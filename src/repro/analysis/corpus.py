"""Verification corpus: ``python -m repro.analysis.corpus [--out F]``.

Two halves, both CI-gated:

* a **good corpus** of continuous-query shapes drawn from the test and
  benchmark suites (filters, expressions, string/math functions, CASE,
  GROUP BY with every aggregate, deltas/joins on the incremental path).
  Every entry must register cleanly (the engine verifies at
  registration) *and* produce zero error diagnostics — a false positive
  here is a CI failure.
* a **planted-bad corpus** of hand-built broken programs/circuits
  (undefined variable, arity mismatch, emitter-boundary type clash,
  missing retraction operator, weight-dropping stage, ...).  Every
  entry must be *rejected* with the expected diagnostic rule — a false
  negative here is a CI failure.

``--out`` writes the full diagnostic listing as a JSON artifact for CI
upload.  The pytest suite (``tests/test_analysis_verifier.py``) reuses
these corpora.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic
from .verifier import verify_circuit, verify_program
from ..kernel.mal import Const, Instr, Program, Var
from ..kernel.types import AtomType

__all__ = [
    "GOOD_QUERIES",
    "planted_bad_cases",
    "run_good_corpus",
    "run_planted_bad",
    "main",
]

# (name, query, execution) — schemas created by _make_cell() below.
GOOD_QUERIES: List[Tuple[str, str, str]] = [
    ("passthrough", "select * from [select * from trades] as x", "reeval"),
    (
        "inner-filter",
        "select * from [select * from trades where trades.price > 5.0] as x",
        "reeval",
    ),
    (
        "outer-filter",
        "select x.sym, x.price from [select * from trades] as x "
        "where x.qty >= 10 and x.price < 100.0",
        "reeval",
    ),
    (
        "arith-projection",
        "select x.sym, x.price * x.qty, -x.qty from "
        "[select * from trades] as x",
        "reeval",
    ),
    (
        "string-functions",
        "select upper(x.sym), length(x.sym), substring(x.sym, 1, 2) "
        "from [select * from trades] as x where x.sym like 'A%'",
        "reeval",
    ),
    (
        "math-functions",
        "select abs(x.price), sqrt(x.price), round(x.price, 2), "
        "floor(x.qty) from [select * from trades] as x",
        "reeval",
    ),
    (
        "case-when",
        "select x.sym, case when x.price > 50.0 then 1 else 0 end "
        "from [select * from trades] as x",
        "reeval",
    ),
    (
        "between-in",
        "select x.sym from [select * from trades] as x "
        "where x.price between 1.0 and 9.0 and x.qty in (1, 2, 3)",
        "reeval",
    ),
    (
        "scalar-aggregates",
        "select sum(x.price), count(*), avg(x.qty) from "
        "[select * from trades] as x",
        "reeval",
    ),
    (
        "group-by-all-aggregates",
        "select x.sym, sum(x.qty), count(x.qty), avg(x.price), "
        "min(x.qty), max(x.price) from [select * from trades] as x "
        "group by x.sym",
        "reeval",
    ),
    (
        "group-min-int",
        # regression shape: grouped min/max over an INT column must
        # keep the INT atom through the emitter boundary
        "select x.sym, min(x.qty), max(x.qty) from "
        "[select * from trades] as x group by x.sym",
        "reeval",
    ),
    (
        "inner-limit",
        "select * from [select * from trades limit 3] as x",
        "reeval",
    ),
    (
        "distinct",
        "select distinct x.sym from [select * from trades] as x",
        "reeval",
    ),
    (
        "isnull",
        "select x.sym from [select * from trades] as x "
        "where x.price is not null",
        "reeval",
    ),
    (
        "incremental-lift",
        "select x.sym, x.price from "
        "[select * from trades where trades.qty > 0] as x",
        "incremental",
    ),
    (
        "incremental-aggregate",
        "select x.sym, sum(x.qty), count(*) from "
        "[select * from trades] as x group by x.sym",
        "incremental",
    ),
    (
        "incremental-join",
        "select l.sym, l.price, r.sector from "
        "[select * from trades] as l, [select * from refs] as r "
        "where l.sym = r.sym",
        "incremental",
    ),
]


def _make_cell(execution: str):
    from ..core.engine import DataCell

    cell = DataCell(execution=execution)
    cell.create_basket(
        "trades",
        [
            ("price", AtomType.DBL),
            ("qty", AtomType.INT),
            ("sym", AtomType.STR),
        ],
    )
    cell.create_basket(
        "refs", [("sym", AtomType.STR), ("sector", AtomType.STR)]
    )
    return cell


def run_good_corpus() -> List[Dict]:
    """Register every corpus query with verification on; collect results."""
    results: List[Dict] = []
    for name, sql, execution in GOOD_QUERIES:
        entry: Dict = {"name": name, "sql": sql, "execution": execution}
        cell = _make_cell(execution)
        try:
            cell.submit_continuous(sql)
            entry["registered"] = True
            entry["errors"] = []
        except Exception as exc:  # any rejection is a false positive
            entry["registered"] = False
            entry["errors"] = [str(exc)]
        finally:
            cell.stop()
        results.append(entry)
    return results


# ----------------------------------------------------------------------
# planted-bad corpus
# ----------------------------------------------------------------------
def _program(instrs: List[Instr], inputs=(), output=None) -> Program:
    prog = Program(name="planted", inputs=list(inputs), output=output)
    for ins in instrs:
        prog.instructions.append(ins)
    return prog


def _bad_undefined_var() -> List[Diagnostic]:
    prog = _program(
        [
            Instr(
                ("v1",), "algebra", "projection",
                (Var("nowhere"), Var("also_nowhere")),
                None,
            )
        ],
        output="v1",
    )
    return verify_program(prog)


def _bad_arity() -> List[Diagnostic]:
    prog = _program(
        [
            Instr(("v0",), "algebra", "densecands", (Var("col"),), None),
            Instr(
                ("v1",), "algebra", "projection",
                (Var("v0"), Var("col"), Const(3), Const(4)),
                None,
            ),
        ],
        inputs=["col"],
        output="v1",
    )
    return verify_program(prog)


def _bad_unknown_opcode() -> List[Diagnostic]:
    prog = _program(
        [Instr(("v1",), "algebra", "teleport", (Var("col"),), None)],
        inputs=["col"],
        output="v1",
    )
    return verify_program(prog)


def _bad_reassignment() -> List[Diagnostic]:
    prog = _program(
        [
            Instr(("v1",), "algebra", "densecands", (Var("col"),), None),
            Instr(("v1",), "algebra", "densecands", (Var("col"),), None),
        ],
        inputs=["col"],
        output="v1",
    )
    return verify_program(prog)


def _bad_emitter_type_clash() -> List[Diagnostic]:
    # plan computes a DBL column where the output basket declares STR
    prog = _program(
        [
            Instr(
                ("v1",), "batcalc", "+", (Var("col"), Const(1.5)), None
            ),
            Instr(
                ("out",), "sql", "resultset",
                (Const(("value",)), Var("v1")),
                None,
            ),
        ],
        inputs=["col"],
        output="out",
    )
    from .signatures import AbstractValue, Kind

    return verify_program(
        prog,
        input_values={
            "col": AbstractValue(Kind.BAT, atom=AtomType.DBL)
        },
        expected_output=[("value", AtomType.STR)],
    )


def _bad_str_arithmetic() -> List[Diagnostic]:
    prog = _program(
        [
            Instr(("v1",), "batcalc", "*", (Var("s"), Const(2)), None),
            Instr(
                ("out",), "sql", "resultset",
                (Const(("v",)), Var("v1")),
                None,
            ),
        ],
        inputs=["s"],
        output="out",
    )
    from .signatures import AbstractValue, Kind

    return verify_program(
        prog,
        input_values={"s": AbstractValue(Kind.BAT, atom=AtomType.STR)},
    )


def _bad_candidate_swap() -> List[Diagnostic]:
    # projection's (cands, bat) order swapped — candidate invariant
    prog = _program(
        [
            Instr(("v0",), "algebra", "densecands", (Var("col"),), None),
            Instr(
                ("v1",), "algebra", "projection",
                (Var("col"), Var("v0")),
                None,
            ),
        ],
        inputs=["col"],
        output="v1",
    )
    from .signatures import AbstractValue, Kind

    return verify_program(
        prog,
        input_values={
            "col": AbstractValue(Kind.BAT, atom=AtomType.INT)
        },
    )


def _bad_result_arity() -> List[Diagnostic]:
    prog = _program(
        [Instr(("a", "b", "c"), "algebra", "join",
               (Var("l"), Var("r")), None)],
        inputs=["l", "r"],
        output="a",
    )
    return verify_program(prog)


def _bad_missing_output() -> List[Diagnostic]:
    prog = _program(
        [Instr(("v1",), "algebra", "densecands", (Var("col"),), None)],
        inputs=["col"],
        output="result_of_nothing",
    )
    return verify_program(prog)


def _make_circuit(kind: str, names, atoms, with_agg: bool):
    from ..incremental.circuit import IncrementalGroupAggregate
    from ..incremental.compile import CircuitContinuousPlan

    plan = CircuitContinuousPlan(
        kind=kind,
        stages=[],
        interpreter=None,
        output_basket="out",
        names=list(names),
        atoms=list(atoms),
    )
    if with_agg:
        plan.agg = IncrementalGroupAggregate(["sum"])
        plan.n_group_keys = 1
        plan.item_plan = [("key", 0), ("agg", 0)]
    return plan


def _bad_missing_retraction() -> List[Diagnostic]:
    # aggregate circuit without its integrate/delay operator: deltas
    # would be emitted but retractions never paired
    from ..incremental.zset import WEIGHT_COLUMN

    plan = _make_circuit(
        "aggregate",
        ["k", "total", WEIGHT_COLUMN],
        [AtomType.INT, AtomType.LNG, AtomType.LNG],
        with_agg=False,
    )
    return verify_circuit(plan)


def _bad_weight_dropping() -> List[Diagnostic]:
    # lift stage claims to emit dc_weight with no downstream consumer
    from ..incremental.zset import WEIGHT_COLUMN

    plan = _make_circuit(
        "lift",
        ["v", WEIGHT_COLUMN],
        [AtomType.INT, AtomType.LNG],
        with_agg=False,
    )
    return verify_circuit(plan)


def _bad_weight_atom() -> List[Diagnostic]:
    from ..incremental.zset import WEIGHT_COLUMN

    plan = _make_circuit(
        "aggregate",
        ["k", WEIGHT_COLUMN],
        [AtomType.INT, AtomType.DBL],
        with_agg=True,
    )
    plan.item_plan = [("key", 0)]
    return verify_circuit(plan)


def _bad_weight_position() -> List[Diagnostic]:
    from ..incremental.zset import WEIGHT_COLUMN

    plan = _make_circuit(
        "aggregate",
        [WEIGHT_COLUMN, "k"],
        [AtomType.LNG, AtomType.INT],
        with_agg=True,
    )
    plan.item_plan = [("key", 0)]
    return verify_circuit(plan)


# name -> (builder, expected rule present among error diagnostics)
PLANTED_BAD: Dict[str, Tuple[Callable[[], List[Diagnostic]], str]] = {
    "undefined-var": (_bad_undefined_var, "undefined-variable"),
    "arity-mismatch": (_bad_arity, "arity"),
    "unknown-opcode": (_bad_unknown_opcode, "unknown-opcode"),
    "reassignment": (_bad_reassignment, "reassignment"),
    "emitter-type-clash": (_bad_emitter_type_clash, "emitter-boundary"),
    "str-arithmetic": (_bad_str_arithmetic, "type-check"),
    "candidate-swap": (_bad_candidate_swap, "bad-argument"),
    "result-arity": (_bad_result_arity, "result-arity"),
    "missing-output": (_bad_missing_output, "undefined-output"),
    "missing-retraction": (_bad_missing_retraction, "circuit-structure"),
    "weight-dropping": (_bad_weight_dropping, "circuit-structure"),
    "weight-atom": (_bad_weight_atom, "circuit-structure"),
    "weight-position": (_bad_weight_position, "circuit-structure"),
}


def planted_bad_cases() -> Dict[str, Tuple[Callable[[], List[Diagnostic]], str]]:
    return dict(PLANTED_BAD)


def run_planted_bad() -> List[Dict]:
    results: List[Dict] = []
    for name, (builder, expected_rule) in PLANTED_BAD.items():
        diagnostics = builder()
        errors = [d for d in diagnostics if d.is_error]
        rejected = any(d.rule == expected_rule for d in errors)
        results.append(
            {
                "name": name,
                "expected_rule": expected_rule,
                "rejected": rejected,
                "diagnostics": [d.to_dict() for d in diagnostics],
            }
        )
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.corpus",
        description="run the plan-verification corpus (CI gate)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON artifact here"
    )
    args = parser.parse_args(argv)

    good = run_good_corpus()
    bad = run_planted_bad()
    false_positives = [g for g in good if not g["registered"]]
    false_negatives = [b for b in bad if not b["rejected"]]

    print(
        f"good corpus: {len(good) - len(false_positives)}/{len(good)} "
        f"registered cleanly"
    )
    for entry in false_positives:
        print(f"FALSE POSITIVE {entry['name']}: {entry['errors']}",
              file=sys.stderr)
    print(
        f"planted-bad corpus: {len(bad) - len(false_negatives)}/{len(bad)} "
        f"rejected with the expected diagnostic"
    )
    for entry in false_negatives:
        print(f"FALSE NEGATIVE {entry['name']}: expected "
              f"[{entry['expected_rule']}]", file=sys.stderr)

    if args.out:
        with open(args.out, "w") as handle:
            json.dump({"good": good, "planted_bad": bad}, handle, indent=2)
        print(f"artifact written to {args.out}")
    return 1 if (false_positives or false_negatives) else 0


if __name__ == "__main__":
    sys.exit(main())
