"""Engine-invariant linter: ``python -m repro.analysis.lint [paths]``.

AST-based, pluggable rules enforcing the invariants the deterministic
simtest oracles and the durability cut depend on:

``wall-clock``
    No ``time.time()`` / ``datetime.now()`` / ``datetime.utcnow()`` /
    ``.today()`` in engine code — all wall time must flow through the
    :mod:`repro.core.clock` seam so the virtual clock controls it.
    Approved seams: ``core/clock.py``, ``testing.py``, ``simtest/``.
    (``time.monotonic``/``perf_counter`` are fine: they measure cost,
    not event time.)

``global-random``
    No module-level ``random.<fn>()`` / ``np.random.<fn>()`` calls —
    randomness must come from a seeded ``random.Random``/``default_rng``
    instance created through :mod:`repro.testing`.  Approved:
    ``testing.py``, ``simtest/``.

``bare-lock``
    No explicit ``<x>.lock.acquire()``/``.release()`` outside the
    approved multi-lock helpers (``core/factory.py``,
    ``durability/manager.py``, ``kernel/interpreter.py``) — everything
    else must use ``with basket.lock:`` so releases can't be missed.

``lock-order``
    A ``for`` loop that acquires ``.lock`` on each element must iterate
    a sequence obtained from ``sorted(...)`` or a ``*lock_order*``
    helper — the Algorithm-1 name-order discipline that makes the
    durability cut deadlock-free.

``sys-name``
    The reserved ``sys.*`` basket namespace may only be minted by the
    system-streams module and the engine itself.

Suppression: append ``# dc-lint: disable=rule[,rule]`` to the offending
line, or put ``# dc-lint: disable-file=rule[,rule]`` (or a bare
``disable-file`` to silence the whole file) in the first ten lines.
Adding a rule = subclass :class:`Rule`, decorate with
:func:`register_rule`; see ``docs/static_analysis.md``.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

__all__ = ["Finding", "Rule", "register_rule", "lint_paths", "main", "RULES"]


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """One lint rule. Subclass, set ``name``/``approved``, implement check."""

    name: str = ""
    #: glob patterns (against the /-normalised relative path) where the
    #: rule does not apply at all
    approved: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        return not any(
            fnmatch.fnmatch(relpath, pattern) for pattern in self.approved
        )

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        raise NotImplementedError


RULES: List[Rule] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    RULES.append(cls())
    return cls


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(rule: Rule, relpath: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=relpath,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule=rule.name,
        message=message,
    )


@register_rule
class WallClockRule(Rule):
    name = "wall-clock"
    approved = (
        "*core/clock.py",
        "*repro/testing.py",
        "*simtest/*",
        "*analysis/*",
        # the network front door reports wall-clock session timestamps
        # to clients (HELLO_OK server_time) — engine state never sees it
        "*server/server.py",
    )
    _banned = {
        "time.time": "use the Clock seam (core/clock.py), not time.time()",
        "datetime.now": "use the Clock seam, not datetime.now()",
        "datetime.utcnow": "use the Clock seam, not datetime.utcnow()",
        "datetime.today": "use the Clock seam, not datetime.today()",
        "datetime.datetime.now": "use the Clock seam, not datetime.now()",
        "datetime.datetime.utcnow": "use the Clock seam, not utcnow()",
        "date.today": "use the Clock seam, not date.today()",
    }

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name in self._banned:
                findings.append(
                    _finding(self, relpath, node, self._banned[name])
                )
        return findings


@register_rule
class GlobalRandomRule(Rule):
    name = "global-random"
    approved = ("*repro/testing.py", "*simtest/*")
    _instance_factories = {"Random", "SystemRandom", "default_rng",
                          "RandomState", "Generator", "seed"}

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if parts[:1] == ["random"] or parts[:2] in (
                ["np", "random"],
                ["numpy", "random"],
            ):
                if parts[-1] in self._instance_factories:
                    continue
                findings.append(
                    _finding(
                        self,
                        relpath,
                        node,
                        f"module-level {name}() breaks episode "
                        f"determinism; use a seeded instance from "
                        f"repro.testing",
                    )
                )
        return findings


@register_rule
class BareLockRule(Rule):
    name = "bare-lock"
    approved = (
        "*core/factory.py",
        "*durability/manager.py",
        "*kernel/interpreter.py",
        "*analysis/lockorder.py",
    )

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("acquire", "release")
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "lock"
            ):
                findings.append(
                    _finding(
                        self,
                        relpath,
                        node,
                        f"bare .lock.{func.attr}() outside the approved "
                        f"multi-lock helpers; use 'with x.lock:'",
                    )
                )
        return findings


def _acquires_lock(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "acquire"
            and isinstance(sub.func.value, ast.Attribute)
            and sub.func.value.attr == "lock"
        ):
            return True
        if isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Attribute) and ctx.attr == "lock":
                    return True
    return False


def _is_ordered_source(node: ast.AST, assignments: Dict[str, ast.AST]) -> bool:
    """True if the iterable provably came from sorted()/a lock-order helper."""
    if isinstance(node, ast.Name):
        node = assignments.get(node.id, node)
    if isinstance(node, ast.Call):
        name = _dotted(node.func) or ""
        if name.split(".")[-1] == "sorted" or "lock_order" in name:
            return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "reversed" and all(
            _is_ordered_source(a, assignments) for a in node.args
        )
    return False


def _scope_nodes(scope: ast.AST):
    """Walk ``scope`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class LockOrderRule(Rule):
    name = "lock-order"
    approved = ("*analysis/*",)

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        findings = []
        for scope in ast.walk(tree):
            if not isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            ):
                continue
            assignments: Dict[str, ast.AST] = {}
            for node in _scope_nodes(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        assignments[target.id] = node.value
            for node in _scope_nodes(scope):
                if not isinstance(node, ast.For):
                    continue
                body_acquires = any(
                    _acquires_lock(stmt) for stmt in node.body
                )
                if not body_acquires:
                    continue
                if not _is_ordered_source(node.iter, assignments):
                    findings.append(
                        _finding(
                            self,
                            relpath,
                            node,
                            "loop acquires .lock per element but the "
                            "iterable is not provably name-ordered "
                            "(sorted(...) or a *lock_order* helper); "
                            "Algorithm-1 discipline prevents deadlock",
                        )
                    )
        return findings


@register_rule
class SysNameRule(Rule):
    name = "sys-name"
    approved = ("*obs/sysstreams.py", "*core/engine.py", "*analysis/*")
    _creators = {"create_basket", "create_table", "register", "Basket"}

    def check(self, tree: ast.Module, relpath: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func) or ""
            if name.split(".")[-1] not in self._creators:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.lower().startswith("sys.")
                ):
                    findings.append(
                        _finding(
                            self,
                            relpath,
                            node,
                            f"reserved name {arg.value!r}: the sys.* "
                            f"namespace belongs to the system streams",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# suppression + driving
# ----------------------------------------------------------------------
_SUPPRESS = re.compile(r"#\s*dc-lint:\s*disable=([\w,-]+)")
_SUPPRESS_FILE = re.compile(r"#\s*dc-lint:\s*disable-file(?:=([\w,-]+))?")


def _suppressions(source: str) -> Tuple[Dict[int, Set[str]], Optional[Set[str]]]:
    """(line -> rules suppressed there, file-wide rules or empty-set=all)."""
    per_line: Dict[int, Set[str]] = {}
    file_wide: Optional[Set[str]] = None
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if match:
            per_line[lineno] = set(match.group(1).split(","))
        if lineno <= 10:
            match = _SUPPRESS_FILE.search(line)
            if match:
                rules = match.group(1)
                file_wide = set(rules.split(",")) if rules else set()
    return per_line, file_wide


def lint_file(
    path: Path,
    root: Path,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    source = path.read_text()
    relpath = str(path.relative_to(root) if root in path.parents or path == root
                  else path).replace("\\", "/")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(relpath, exc.lineno or 0, exc.offset or 0,
                    "syntax", f"cannot parse: {exc.msg}")
        ]
    per_line, file_wide = _suppressions(source)
    findings: List[Finding] = []
    for rule in RULES:
        if select is not None and rule.name not in select:
            continue
        if not rule.applies_to(relpath):
            continue
        if file_wide is not None and (not file_wide or rule.name in file_wide):
            continue
        for finding in rule.check(tree, relpath):
            suppressed = per_line.get(finding.line, set())
            if finding.rule in suppressed:
                continue
            findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str], select: Optional[Set[str]] = None
) -> List[Finding]:
    findings: List[Finding] = []
    for raw in paths:
        base = Path(raw)
        root = base if base.is_dir() else base.parent
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            if "__pycache__" in path.parts:
                continue
            findings.extend(lint_file(path, root, select))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="DataCell engine-invariant linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rules and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(rule.name)
        return 0
    select = set(args.select.split(",")) if args.select else None
    findings = lint_paths(args.paths, select)
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
