"""Kernel opcode signatures for the static MAL verifier.

Every primitive registered in :data:`repro.kernel.interpreter._REGISTRY`
has an entry in :data:`SIGNATURES` describing its arity, the *kind* of
each parameter (BAT, candidate list, scalar constant, table, result
set), how many results it produces, and — where the kernel's behavior
is deterministic in the input atom types — an abstract type-inference
rule mirroring the runtime exactly (``calc_binary`` widening,
``math_unary`` atom rules, aggregate output atoms, ...).

The inference rules are deliberately *false-positive safe*: an unknown
atom propagates as ``None`` and disables downstream checks; a diagnostic
is only reported when both sides are known and provably incompatible at
runtime (the kernel would raise :class:`TypeMismatchError` or the
emitter-boundary ``append_bat`` would reject the column).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from ..kernel.types import AtomType, common_type
from ..errors import TypeMismatchError

__all__ = [
    "Kind",
    "AbstractValue",
    "Signature",
    "SIGNATURES",
    "literal_atom",
    "atom_of",
    "registry_coverage",
]


class Kind(enum.Enum):
    """Abstract kind of a MAL variable's value."""

    BAT = "bat"
    CAND = "cand"
    SCALAR = "scalar"
    TABLE = "table"
    RESULT = "result"
    ANY = "any"


Columns = Tuple[Tuple[str, Optional[AtomType]], ...]


@dataclass(frozen=True)
class AbstractValue:
    """What the verifier knows about one MAL variable.

    ``columns`` carries (lower-cased name, atom) pairs for TABLE and
    RESULT kinds so emitter/factory-boundary checks can compare schemas;
    ``const``/``has_const`` carry literal argument values (``Const``
    operands and folded constants).
    """

    kind: Kind = Kind.ANY
    atom: Optional[AtomType] = None
    columns: Optional[Columns] = None
    const: Any = None
    has_const: bool = False


UNKNOWN = AbstractValue()


def bat(atom: Optional[AtomType] = None) -> AbstractValue:
    return AbstractValue(Kind.BAT, atom=atom)


def cand() -> AbstractValue:
    return AbstractValue(Kind.CAND)


def scalar(atom: Optional[AtomType] = None) -> AbstractValue:
    return AbstractValue(Kind.SCALAR, atom=atom)


def literal_atom(value: Any) -> Optional[AtomType]:
    """Atom a python literal coerces to at runtime (None = unknown/NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return AtomType.BOOL
    if isinstance(value, int):
        return AtomType.LNG
    if isinstance(value, float):
        return AtomType.DBL
    if isinstance(value, str):
        return AtomType.STR
    return None


def atom_of(value: Optional[AbstractValue]) -> Optional[AtomType]:
    """Best-known atom of a value (consts fall back to literal typing)."""
    if value is None:
        return None
    if value.atom is not None:
        return value.atom
    if value.has_const:
        return literal_atom(value.const)
    return None


Report = Callable[..., None]
Infer = Callable[[Any, List[Optional[AbstractValue]], Report], Any]


@dataclass(frozen=True)
class Signature:
    """Declared shape of one kernel primitive.

    ``params`` entries are kind specs — ``bat``, ``cand``, ``candopt``
    (a candidate list or a literal ``None``), ``scalar``, ``table``,
    ``result``, ``any`` — with a ``?`` suffix marking the parameter
    optional.  ``varargs`` accepts any number of trailing arguments of
    that spec.  ``results`` is the exact number of MAL result variables
    the primitive assigns.  ``infer`` computes the abstract result
    value(s) and reports type clashes.
    """

    params: Tuple[str, ...]
    results: int = 1
    varargs: Optional[str] = None
    infer: Optional[Infer] = None

    @property
    def min_arity(self) -> int:
        return sum(1 for p in self.params if not p.endswith("?"))

    @property
    def max_arity(self) -> Optional[int]:
        return None if self.varargs else len(self.params)


_KIND_ACCEPTS: Dict[str, Tuple[Kind, ...]] = {
    "bat": (Kind.BAT, Kind.ANY),
    "cand": (Kind.CAND, Kind.ANY),
    # a candidate list, or the literal None meaning "all rows"
    "candopt": (Kind.CAND, Kind.SCALAR, Kind.ANY),
    "scalar": (Kind.SCALAR, Kind.ANY),
    "table": (Kind.TABLE, Kind.ANY),
    "result": (Kind.RESULT, Kind.ANY),
    "any": tuple(Kind),
}


def accepts(spec: str, value: AbstractValue) -> bool:
    """Whether a value of this kind may bind the parameter spec."""
    spec = spec.rstrip("?")
    if spec == "candopt" and value.kind is Kind.SCALAR:
        return value.has_const and value.const is None
    return value.kind in _KIND_ACCEPTS.get(spec, tuple(Kind))


# ----------------------------------------------------------------------
# inference helpers
# ----------------------------------------------------------------------
def _join_numeric(
    a: Optional[AtomType],
    b: Optional[AtomType],
    report: Report,
    what: str,
) -> Optional[AtomType]:
    """``common_type`` with unknowns propagating and STR clashes reported."""
    if a is None or b is None:
        return None
    try:
        return common_type(a, b)
    except TypeMismatchError:
        report(f"{what}: incompatible atoms {a.name} and {b.name}")
        return None


def _check_comparable(
    a: Optional[AtomType], b: Optional[AtomType], report: Report, what: str
) -> None:
    if a is None or b is None:
        return
    if (a is AtomType.STR) != (b is AtomType.STR):
        report(f"{what}: cannot compare {a.name} with {b.name}")


def _infer_arith(op: str) -> Infer:
    def infer(ctx, args, report):
        a, b = atom_of(args[0]), atom_of(args[1])
        if a is AtomType.STR or b is AtomType.STR:
            if op == "+":
                if a is AtomType.STR and b is AtomType.STR:
                    return bat(AtomType.STR)
                if a is not None and b is not None:
                    report(
                        f"batcalc.+: cannot concatenate "
                        f"{a.name} with {b.name}"
                    )
                return bat()
            if a is not None and b is not None:
                report(
                    f"batcalc.{op}: arithmetic between "
                    f"{a.name} and {b.name}"
                )
            return bat()
        out = _join_numeric(a, b, report, f"batcalc.{op}")
        if op == "/":
            return bat(AtomType.DBL if out is not None else None)
        return bat(out)

    return infer


def _infer_compare(op: str) -> Infer:
    def infer(ctx, args, report):
        _check_comparable(
            atom_of(args[0]), atom_of(args[1]), report, f"batcalc.{op}"
        )
        return bat(AtomType.BOOL)

    return infer


def _require_bool(value, report, what: str) -> None:
    a = atom_of(value)
    if a is not None and a is not AtomType.BOOL:
        report(f"{what} requires a bool operand, got {a.name}")


def _infer_boolop(name: str) -> Infer:
    def infer(ctx, args, report):
        for arg in args:
            _require_bool(arg, report, f"batcalc.{name}")
        return bat(AtomType.BOOL)

    return infer


def _infer_neg(ctx, args, report):
    a = atom_of(args[0])
    if a is AtomType.STR:
        report("batcalc.neg: cannot negate a str column")
        return bat()
    return bat(a)


def _infer_ifthenelse(ctx, args, report):
    _require_bool(args[0], report, "batcalc.ifthenelse")
    t, e = atom_of(args[1]), atom_of(args[2])
    if t is None or e is None:
        return bat()
    if (t is AtomType.STR) != (e is AtomType.STR):
        report(
            f"batcalc.ifthenelse: branch atoms {t.name} and {e.name} "
            f"have no common type"
        )
        return bat()
    return bat(_join_numeric(t, e, report, "batcalc.ifthenelse"))


def _parse_atom(text: Any) -> Optional[AtomType]:
    if not isinstance(text, str):
        return None
    try:
        return AtomType(text.lower())
    except ValueError:
        try:
            return AtomType[text.upper()]
        except KeyError:
            return None


def _infer_cast(ctx, args, report):
    target = args[1]
    if target is not None and target.has_const:
        atom = _parse_atom(target.const)
        if atom is None:
            report(f"batcalc.cast: unknown atom {target.const!r}")
            return bat()
        return bat(atom)
    return bat()


def _infer_const(ctx, args, report):
    explicit = args[2] if len(args) > 2 else None
    if explicit is not None and explicit.has_const and explicit.const:
        return bat(_parse_atom(explicit.const))
    value = args[0]
    if value is not None and value.has_const:
        return bat(literal_atom(value.const))
    return bat()


def aggregate_result_atom(
    name: str, input_atom: Optional[AtomType]
) -> Optional[AtomType]:
    """Output atom of aggregate ``name`` — mirrors the kernel exactly.

    count/count_star → LNG; avg → DBL; sum widens integrals to LNG;
    min/max preserve the input atom (including STR).
    """
    if name in ("count", "count_star"):
        return AtomType.LNG
    if name == "avg":
        return AtomType.DBL
    if input_atom is None:
        return None
    if name == "sum":
        return AtomType.LNG if input_atom.is_integral else AtomType.DBL
    return input_atom  # min / max


def _infer_aggr(name: str, grouped: bool) -> Infer:
    def infer(ctx, args, report):
        a = atom_of(args[0])
        if a is AtomType.STR and name not in ("min", "max", "count", "count_star"):
            report(f"aggr.{name}: undefined on a str column")
            return bat() if grouped else scalar()
        out = aggregate_result_atom(name, a)
        return bat(out) if grouped else scalar(out)

    return infer


def _infer_projection(ctx, args, report):
    return bat(atom_of(args[1]))


def _infer_slice(ctx, args, report):
    return bat(atom_of(args[0]))


def _infer_mask2cand(ctx, args, report):
    _require_bool(args[0], report, "algebra.mask2cand")
    return cand()


def _infer_join(n_results: int) -> Infer:
    def infer(ctx, args, report):
        _check_comparable(
            atom_of(args[0]), atom_of(args[1]), report, "join keys"
        )
        return tuple(cand() for _ in range(n_results))

    return infer


def _infer_select(ctx, args, report):
    a = atom_of(args[0])
    for bound in args[2:4]:
        _check_comparable(a, atom_of(bound), report, "algebra.select bound")
    return cand()


_THETA_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _infer_thetaselect(ctx, args, report):
    op = args[2]
    if op is not None and op.has_const and op.const not in _THETA_OPS:
        report(f"algebra.thetaselect: unknown operator {op.const!r}")
    _check_comparable(
        atom_of(args[0]), atom_of(args[3]), report, "algebra.thetaselect"
    )
    return cand()


def _require_str(value, report, what: str) -> None:
    a = atom_of(value)
    if a is not None and a is not AtomType.STR:
        report(f"{what} requires a str column, got {a.name}")


def _infer_batstr(result_atom: AtomType) -> Infer:
    def infer(ctx, args, report):
        _require_str(args[0], report, "batstr")
        return bat(result_atom)

    return infer


def math_result_atom(
    name: str,
    input_atom: Optional[AtomType],
    digits: Optional[int],
) -> Optional[AtomType]:
    """Mirror of :func:`repro.kernel.mathops.math_unary` atom rules."""
    if name == "sqrt":
        return AtomType.DBL
    if input_atom is None:
        return None
    if name == "abs":
        return input_atom
    if name == "round" and digits is None:
        return None  # digits unknown statically
    if name == "round" and digits:
        return AtomType.DBL
    # floor / ceil / round(0)
    return AtomType.LNG if input_atom.is_integral else AtomType.DBL


def _infer_math(name: str) -> Infer:
    def infer(ctx, args, report):
        a = atom_of(args[0])
        if a is not None and not a.is_numeric:
            report(f"batmath.{name} requires a numeric column, got {a.name}")
            return bat()
        digits = None
        if len(args) > 1 and args[1] is not None and args[1].has_const:
            try:
                digits = int(args[1].const)
            except (TypeError, ValueError):
                digits = None
        if len(args) <= 1:
            digits = 0
        return bat(math_result_atom(name, a, digits))

    return infer


def _table_columns(ctx, name: Any) -> Optional[Columns]:
    catalog = getattr(ctx, "catalog", None)
    if catalog is None or not isinstance(name, str):
        return None
    try:
        table = catalog.get(name)
    except Exception:
        return None
    return tuple(
        (col.name.lower(), col.atom) for col in table.schema
    )


def _infer_bind_table(ctx, args, report):
    name = args[0]
    if name is not None and name.has_const:
        cols = _table_columns(ctx, name.const)
        if cols is None and getattr(ctx, "catalog", None) is not None:
            report(
                f"unknown table or basket {name.const!r}",
                rule="unknown-table",
            )
        return AbstractValue(Kind.TABLE, columns=cols)
    return AbstractValue(Kind.TABLE)


def _infer_sql_bind(ctx, args, report):
    table, column = args[0], args[1]
    cols: Optional[Columns] = None
    if table is not None and table.kind is Kind.TABLE:
        cols = table.columns
    elif table is not None and table.has_const:
        cols = _table_columns(ctx, table.const)
    if (
        cols is not None
        and column is not None
        and column.has_const
        and isinstance(column.const, str)
    ):
        wanted = column.const.lower()
        for col_name, col_atom in cols:
            if col_name == wanted:
                return bat(col_atom)
        report(
            f"unknown column {column.const!r}", rule="unknown-column"
        )
    return bat()


def _infer_table_passthrough(ctx, args, report):
    value = args[0]
    if value is not None and value.kind is Kind.TABLE:
        return value
    return AbstractValue(Kind.TABLE)


def _infer_basket_append(ctx, args, report):
    table, result = args[0], args[1]
    if (
        table is not None
        and result is not None
        and table.columns is not None
        and result.columns is not None
    ):
        # basket.append zips table.schema with result.bats; append_bat
        # requires exact atom identity per position.
        if len(result.columns) > len(table.columns):
            report(
                f"basket.append: result has {len(result.columns)} columns "
                f"but the basket only {len(table.columns)}",
                rule="schema-mismatch",
            )
        for pos, (tcol, rcol) in enumerate(zip(table.columns, result.columns)):
            tname, tatom = tcol
            _, ratom = rcol
            if tatom is not None and ratom is not None and tatom is not ratom:
                report(
                    f"basket.append: column {pos} ({tname!r}) is "
                    f"{tatom.name} but the appended result column is "
                    f"{ratom.name}",
                    rule="schema-mismatch",
                )
    return scalar(AtomType.LNG)


def _infer_snapshot(ctx, args, report):
    table, column = args[0], args[1]
    if (
        table is not None
        and table.columns is not None
        and column is not None
        and column.has_const
        and isinstance(column.const, str)
    ):
        wanted = column.const.lower()
        for col_name, col_atom in table.columns:
            if col_name == wanted:
                return bat(col_atom)
        report(f"unknown column {column.const!r}", rule="unknown-column")
    return bat()


def _infer_concat(ctx, args, report):
    a, b = atom_of(args[0]), atom_of(args[1])
    if a is not None and b is not None and a is not b:
        report(
            f"bat.concat: atoms {a.name} and {b.name} differ "
            f"(append_bat requires identical atoms)"
        )
    return bat(a or b)


def _infer_resultset(ctx, args, report):
    names = args[0]
    bats = args[1:]
    columns: Optional[Columns] = None
    if names is not None and names.has_const and isinstance(
        names.const, (tuple, list)
    ):
        declared = [str(n) for n in names.const]
        if len(declared) != len(bats):
            report(
                f"sql.resultset: {len(declared)} names for "
                f"{len(bats)} columns",
                rule="schema-mismatch",
            )
        columns = tuple(
            (name.lower(), atom_of(value))
            for name, value in zip(declared, bats)
        )
    return AbstractValue(Kind.RESULT, columns=columns)


def _infer_single_row(ctx, args, report):
    names, atoms = args[0], args[1]
    values = args[2:]
    columns: Optional[Columns] = None
    if (
        names is not None
        and names.has_const
        and isinstance(names.const, (tuple, list))
        and atoms is not None
        and atoms.has_const
        and isinstance(atoms.const, (tuple, list))
    ):
        declared = [str(n) for n in names.const]
        parsed = [_parse_atom(str(a)) for a in atoms.const]
        if not (len(declared) == len(parsed) == len(values)):
            report(
                f"sql.single_row: {len(declared)} names, "
                f"{len(parsed)} atoms, {len(values)} values",
                rule="schema-mismatch",
            )
        columns = tuple(zip((n.lower() for n in declared), parsed))
        for pos, (value, atom) in enumerate(zip(values, parsed)):
            got = atom_of(value)
            if got is None or atom is None:
                continue
            if (got is AtomType.STR) != (atom is AtomType.STR):
                report(
                    f"sql.single_row: value {pos} is {got.name} but "
                    f"column declared {atom.name}",
                    rule="schema-mismatch",
                )
    return AbstractValue(Kind.RESULT, columns=columns)


def _infer_result_column(ctx, args, report):
    result, index = args[0], args[1]
    if (
        result is not None
        and result.columns is not None
        and index is not None
        and index.has_const
        and isinstance(index.const, int)
    ):
        if not 0 <= index.const < len(result.columns):
            report(
                f"sql.result_column: index {index.const} out of range "
                f"for {len(result.columns)} columns",
                rule="schema-mismatch",
            )
            return bat()
        return bat(result.columns[index.const][1])
    return bat()


def _infer_result_passthrough(ctx, args, report):
    value = args[0]
    if value is not None and value.kind is Kind.RESULT:
        return value
    return AbstractValue(Kind.RESULT)


def _infer_pass(ctx, args, report):
    if args and args[0] is not None:
        return args[0]
    return UNKNOWN


def _infer_group(ctx, args, report):
    return (bat(AtomType.OID), UNKNOWN, scalar(AtomType.LNG))


def _infer_likeselect(ctx, args, report):
    _require_str(args[0], report, "algebra.likeselect")
    return cand()


SIGNATURES: Dict[str, Signature] = {
    # --- sql -----------------------------------------------------------
    "sql.bind": Signature(("any", "scalar"), infer=_infer_sql_bind),
    "sql.bind_table": Signature(("scalar",), infer=_infer_bind_table),
    "sql.resultset": Signature(
        ("scalar",), varargs="bat", infer=_infer_resultset
    ),
    "sql.single_row": Signature(
        ("scalar", "scalar"), varargs="scalar", infer=_infer_single_row
    ),
    "sql.result_column": Signature(
        ("result", "scalar"), infer=_infer_result_column
    ),
    # --- algebra -------------------------------------------------------
    "algebra.select": Signature(
        ("bat", "candopt", "scalar", "scalar", "scalar", "scalar", "scalar"),
        infer=_infer_select,
    ),
    "algebra.thetaselect": Signature(
        ("bat", "candopt", "scalar", "scalar"), infer=_infer_thetaselect
    ),
    "algebra.selectnil": Signature(
        ("bat", "candopt"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.selectnotnil": Signature(
        ("bat", "candopt"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.projection": Signature(
        ("cand", "bat"), infer=_infer_projection
    ),
    "algebra.join": Signature(("bat", "bat"), results=2, infer=_infer_join(2)),
    "algebra.thetajoin": Signature(
        ("bat", "bat", "scalar"), results=2, infer=_infer_join(2)
    ),
    "algebra.leftouterjoin": Signature(
        ("bat", "bat"), results=2, infer=_infer_join(2)
    ),
    "algebra.crossproduct": Signature(
        ("bat", "bat"), results=2,
        infer=lambda ctx, a, r: (cand(), cand()),
    ),
    "algebra.sort": Signature(
        ("bat", "candopt", "scalar"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.refine": Signature(
        ("bat", "cand", "scalar"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.firstn": Signature(
        ("cand", "scalar"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.slice": Signature(
        ("bat", "scalar", "scalar"), infer=_infer_slice
    ),
    "algebra.mask2cand": Signature(("bat",), infer=_infer_mask2cand),
    "algebra.densecands": Signature(("bat",), infer=lambda ctx, a, r: cand()),
    "algebra.compose": Signature(
        ("cand", "cand"), infer=lambda ctx, a, r: cand()
    ),
    "algebra.likeselect": Signature(
        ("bat", "candopt", "scalar", "scalar?"), infer=_infer_likeselect
    ),
    # --- cand ----------------------------------------------------------
    "cand.intersect": Signature(
        ("cand", "cand"), infer=lambda ctx, a, r: cand()
    ),
    "cand.union": Signature(("cand", "cand"), infer=lambda ctx, a, r: cand()),
    "cand.difference": Signature(
        ("cand", "cand"), infer=lambda ctx, a, r: cand()
    ),
    # --- batcalc -------------------------------------------------------
    "batcalc.and": Signature(("any", "any"), infer=_infer_boolop("and")),
    "batcalc.or": Signature(("any", "any"), infer=_infer_boolop("or")),
    "batcalc.not": Signature(("bat",), infer=_infer_boolop("not")),
    "batcalc.isnil": Signature(
        ("bat",), infer=lambda ctx, a, r: bat(AtomType.BOOL)
    ),
    "batcalc.neg": Signature(("bat",), infer=_infer_neg),
    "batcalc.ifthenelse": Signature(
        ("bat", "any", "any"), infer=_infer_ifthenelse
    ),
    "batcalc.cast": Signature(("bat", "scalar"), infer=_infer_cast),
    "batcalc.const": Signature(
        ("scalar", "bat", "scalar?"), infer=_infer_const
    ),
    # --- group ---------------------------------------------------------
    "group.group": Signature(
        ("bat", "candopt?"), results=3, infer=_infer_group
    ),
    "group.subgroup": Signature(
        ("bat", "bat", "candopt?"), results=3, infer=_infer_group
    ),
    # --- basket --------------------------------------------------------
    "basket.bind": Signature(("scalar",), infer=_infer_bind_table),
    "basket.lock": Signature(("table",), infer=_infer_table_passthrough),
    "basket.unlock": Signature(("table",), infer=_infer_table_passthrough),
    "basket.count": Signature(
        ("table",), infer=lambda ctx, a, r: scalar(AtomType.LNG)
    ),
    "basket.empty": Signature(
        ("table",), infer=lambda ctx, a, r: scalar(AtomType.LNG)
    ),
    "basket.append": Signature(
        ("table", "result"), infer=_infer_basket_append
    ),
    "basket.snapshot": Signature(("table", "scalar"), infer=_infer_snapshot),
    # --- bat -----------------------------------------------------------
    "bat.concat": Signature(("bat", "bat"), infer=_infer_concat),
    # --- delta (Z-set incremental) -------------------------------------
    "delta.canonicalize": Signature(
        ("result",), infer=_infer_result_passthrough
    ),
    "delta.expand": Signature(("result",), infer=_infer_result_passthrough),
    "delta.subsum": Signature(
        ("bat", "bat", "bat", "scalar"),
        infer=lambda ctx, a, r: bat(AtomType.DBL),
    ),
    "delta.subcount": Signature(
        ("bat", "bat", "scalar"),
        infer=lambda ctx, a, r: bat(AtomType.LNG),
    ),
    # --- language ------------------------------------------------------
    "language.pass": Signature(("any?",), infer=_infer_pass),
}


def _install_families() -> None:
    for op in ("+", "-", "*", "/", "%"):
        SIGNATURES[f"batcalc.{op}"] = Signature(
            ("any", "any"), infer=_infer_arith(op)
        )
    for op in _THETA_OPS:
        SIGNATURES[f"batcalc.{op}"] = Signature(
            ("any", "any"), infer=_infer_compare(op)
        )
    from ..kernel.aggregate import AGGREGATE_NAMES

    for name in AGGREGATE_NAMES:
        SIGNATURES[f"aggr.{name}"] = Signature(
            ("bat", "candopt?"), infer=_infer_aggr(name, grouped=False)
        )
        SIGNATURES[f"aggr.sub{name}"] = Signature(
            ("bat", "bat", "scalar", "candopt?"),
            infer=_infer_aggr(name, grouped=True),
        )
    for fn_name, result_atom in (
        ("upper", AtomType.STR),
        ("lower", AtomType.STR),
        ("trim", AtomType.STR),
        ("length", AtomType.INT),
    ):
        SIGNATURES[f"batstr.{fn_name}"] = Signature(
            ("bat",), infer=_infer_batstr(result_atom)
        )
    SIGNATURES["batstr.substring"] = Signature(
        ("bat", "scalar", "scalar?"), infer=_infer_batstr(AtomType.STR)
    )
    SIGNATURES["batstr.like"] = Signature(
        ("bat", "scalar", "scalar?"), infer=_infer_batstr(AtomType.BOOL)
    )
    from ..kernel.mathops import MATH_FUNCTIONS

    for fn_name in MATH_FUNCTIONS:
        SIGNATURES[f"batmath.{fn_name}"] = Signature(
            ("bat", "scalar?"), infer=_infer_math(fn_name)
        )


_install_families()


def registry_coverage() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(registered-but-unsigned, signed-but-unregistered) opcode names.

    The first set means the verifier would wrongly reject a working
    program (missing signature); the second means a signed opcode would
    fail mid-firing with ``unknown MAL primitive`` — both are CI
    failures in the analysis test suite.
    """
    from ..kernel.interpreter import _REGISTRY

    unsigned = tuple(sorted(set(_REGISTRY) - set(SIGNATURES)))
    unregistered = tuple(sorted(set(SIGNATURES) - set(_REGISTRY)))
    return unsigned, unregistered
