"""Runtime lock-order recorder: deadlock *potential* as a test failure.

The durability consistency cut and shared-basket factories rely on
Algorithm-1 discipline: whenever more than one basket lock is held, the
locks were taken in sorted-name order.  A deadlock from a violation only
manifests under the wrong interleaving — this recorder instead builds
the *acquisition graph* (edge ``a → b`` whenever ``b`` is acquired while
``a`` is held, per thread, reentrancy-aware) and flags any cycle the
moment its closing edge appears, regardless of whether the schedule ever
actually deadlocks.

Wiring is a duck-typed seam: :meth:`Catalog.register` wraps each
table's lock via ``catalog.lock_observer.wrap(name, lock)`` when an
observer is installed, so the kernel never imports this module.  The
simtest harness installs a strict global recorder under
``--lock-order``; unit tests construct their own.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from ..errors import DataCellError

__all__ = [
    "LockOrderError",
    "LockOrderRecorder",
    "ObservedLock",
    "global_recorder",
    "set_global_recorder",
]


class LockOrderError(DataCellError):
    """An acquisition-graph cycle (deadlock potential) was detected."""


class LockOrderRecorder:
    """Records lock acquisitions and detects ordering cycles.

    ``strict=True`` raises :class:`LockOrderError` at the violating
    acquisition; otherwise violations accumulate in :attr:`violations`
    for the harness to assert on.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: List[str] = []
        # acquisition graph: name -> names acquired while it was held
        self._edges: Dict[str, Set[str]] = {}
        self._graph_lock = threading.Lock()
        self._local = threading.local()

    # -- wiring --------------------------------------------------------
    def wrap(self, name: str, lock) -> "ObservedLock":
        """Wrap a lock so its acquisitions feed this recorder."""
        return ObservedLock(name, lock, self)

    # -- per-thread held stack -----------------------------------------
    def _held(self) -> List[str]:
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = []
            self._local.held = stack
        return stack

    def _counts(self) -> Dict[str, int]:
        counts = getattr(self._local, "counts", None)
        if counts is None:
            counts = {}
            self._local.counts = counts
        return counts

    # -- events --------------------------------------------------------
    def on_acquire(self, name: str) -> None:
        held = self._held()
        counts = self._counts()
        if counts.get(name, 0):  # reentrant re-acquire: no new edge
            counts[name] += 1
            return
        counts[name] = 1
        cycle: Optional[List[str]] = None
        with self._graph_lock:
            for holder in held:
                if holder == name:
                    continue
                self._edges.setdefault(holder, set()).add(name)
            if held:
                cycle = self._find_cycle(name)
        held.append(name)
        if cycle:
            message = (
                f"lock-order cycle: {' -> '.join(cycle)} "
                f"(acquired {name!r} while holding "
                f"{', '.join(repr(h) for h in held[:-1])})"
            )
            self.violations.append(message)
            if self.strict:
                raise LockOrderError(message)

    def on_release(self, name: str) -> None:
        counts = self._counts()
        remaining = counts.get(name, 0) - 1
        if remaining > 0:
            counts[name] = remaining
            return
        counts.pop(name, None)
        held = self._held()
        if name in held:
            held.remove(name)

    # -- cycle detection ------------------------------------------------
    def _find_cycle(self, start: str) -> Optional[List[str]]:
        """DFS from ``start`` back to itself through acquisition edges."""
        path: List[str] = [start]
        seen: Set[str] = set()

        def walk(node: str) -> Optional[List[str]]:
            for succ in self._edges.get(node, ()):
                if succ == start:
                    return path + [start]
                if succ in seen:
                    continue
                seen.add(succ)
                path.append(succ)
                found = walk(succ)
                if found:
                    return found
                path.pop()
            return None

        return walk(start)

    # -- reporting ------------------------------------------------------
    def edge_count(self) -> int:
        with self._graph_lock:
            return sum(len(v) for v in self._edges.values())

    def summary(self) -> str:
        return (
            f"lock-order: {self.edge_count()} acquisition edge(s), "
            f"{len(self.violations)} violation(s)"
        )


class ObservedLock:
    """Proxy forwarding to the real lock, reporting to the recorder.

    Acquisition is reported *after* the real acquire succeeds so the
    recorder never sees a lock the thread failed to take; release is
    reported before the real release.
    """

    __slots__ = ("_name", "_lock", "_recorder")

    def __init__(self, name: str, lock, recorder: LockOrderRecorder) -> None:
        self._name = name
        self._lock = lock
        self._recorder = recorder

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            try:
                self._recorder.on_acquire(self._name)
            except BaseException:
                # strict-mode refusal: unwind so the caller never holds
                # a lock it was told it could not take
                self.release()
                raise
        return acquired

    def release(self) -> None:
        self._recorder.on_release(self._name)
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObservedLock({self._name!r})"


_GLOBAL: Optional[LockOrderRecorder] = None


def set_global_recorder(
    recorder: Optional[LockOrderRecorder],
) -> Optional[LockOrderRecorder]:
    """Install (or clear, with None) the process-wide recorder.

    New :class:`~repro.core.engine.DataCell` instances pick it up at
    construction; returns the previous recorder so callers can restore.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = recorder
    return previous


def global_recorder() -> Optional[LockOrderRecorder]:
    return _GLOBAL
