"""repro — a reproduction of *DataCell* (Liarou & Kersten, VLDB 2009).

DataCell builds a data-stream engine *on top of* a relational column-store
kernel instead of designing a DSMS from scratch.  Incoming tuples are
appended to **baskets** (stream tables); **factories** (continuous query
plans compiled to the kernel's MAL algebra) consume them under Petri-net
scheduling; **receptors**/**emitters** connect the engine to the world.

Typical usage::

    from repro import DataCell

    cell = DataCell()
    cell.execute("create basket sensors (sensor int, temp double)")
    query = cell.submit_continuous(
        "select s.sensor, s.temp from "
        "[select * from sensors where sensors.temp > 30.0] as s")
    cell.insert("sensors", [(1, 45.0), (2, 20.0)])
    cell.run_until_quiescent()
    print(query.fetch())            # -> [(1, 45.0)]

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
claims reproduced by the benchmark suite.
"""

from .core.basket import Basket
from .core.clock import LogicalClock, MonotonicClock, VirtualClock, WallClock
from .core.continuous import ContinuousQuery
from .core.engine import DataCell
from .core.factory import CallablePlan, ConsumeMode, Factory, InputBinding
from .core.scheduler import FiringPolicy, PriorityPolicy, Scheduler
from .core.windows import WindowMode, WindowSpec
from .kernel import AtomType, BAT, Catalog, ResultSet, Table
from .obs import MetricsRegistry, TraceLog

__all__ = [
    "DataCell",
    "Basket",
    "ContinuousQuery",
    "Factory",
    "CallablePlan",
    "ConsumeMode",
    "InputBinding",
    "Scheduler",
    "FiringPolicy",
    "PriorityPolicy",
    "MetricsRegistry",
    "TraceLog",
    "WindowSpec",
    "WindowMode",
    "LogicalClock",
    "MonotonicClock",
    "VirtualClock",
    "WallClock",
    "AtomType",
    "BAT",
    "Catalog",
    "ResultSet",
    "Table",
]

__version__ = "1.0.0"
