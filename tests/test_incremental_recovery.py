"""Kill-and-restart recovery of incremental (Z-set) operator state.

The durability contract does not weaken on the incremental route:
circuit state (aggregate groups, join state, delta-window buffers)
rides the same checkpoint/WAL machinery, so a crash at any firing
boundary must recover to byte-identical output — pre-crash emission
plus post-recovery emission equals the uninterrupted run, and weighted
outputs still integrate to the one-shot answer over the full stream.
"""

from collections import Counter

import pytest

from repro import DataCell
from repro.durability import DurabilityConfig
from repro.incremental import integrate_weighted_rows
from repro.kernel.types import AtomType
from repro.simtest.crash import CrashSpec, check_crash_episode
from repro.simtest.incremental import incremental_episode_spec

ROWS = [(k % 4, v) for k, v in zip(range(30), range(-6, 24))]


# ----------------------------------------------------------------------
# seeded episodes through the differential harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", ["passthrough", "filter", "compound"])
@pytest.mark.parametrize("checkpoint_every", [None, 3])
def test_linear_circuit_crash_recovers_byte_identically(
    case, checkpoint_every
):
    spec = CrashSpec(
        seed=101,
        rows=tuple(ROWS),
        case=case,
        policy="priority",
        batch_size=4,
        crash_after=4,
        checkpoint_every=checkpoint_every,
        fsync="always",
        execution="incremental",
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert result.ok, result.explain()


@pytest.mark.parametrize("size,slide,aggregate", [
    (4, 2, "sum"),
    (4, 4, "min"),
    (6, 3, "avg"),
])
def test_delta_window_crash_recovers_byte_identically(
    size, slide, aggregate
):
    spec = CrashSpec(
        seed=202,
        rows=tuple((v,) for v, _ in ROWS),
        case="window",
        policy="random",
        batch_size=3,
        crash_after=5,
        checkpoint_every=2,
        fsync="interval",
        window=(size, slide),
        window_aggregate=aggregate,
        execution="incremental",
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert result.ok, result.explain()


def test_seeded_corpus_cycles_incremental_crash_episodes():
    """The CI generator must actually exercise incremental crashes."""
    specs = [incremental_episode_spec(i, base_seed=0) for i in range(60)]
    crash_specs = [s for s in specs if s.kind == "crash"]
    assert len(crash_specs) >= 8


# ----------------------------------------------------------------------
# weighted circuits (aggregate, join) through checkpoint + WAL directly
# ----------------------------------------------------------------------
def _agg_cell(directory):
    cell = DataCell(
        execution="incremental",
        durability=(
            DurabilityConfig(directory=directory, fsync="always")
            if directory is not None
            else None
        ),
    )
    cell.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.INT)])
    handle = cell.submit_continuous(
        "select x.a, sum(x.b), count(x.b), min(x.b), max(x.b) "
        "from [select * from feed] as x group by x.a",
        name="agg",
    )
    return cell, handle


def _feed(cell, rows, batch=4):
    for i in range(0, len(rows), batch):
        cell.insert("feed", [list(r) for r in rows[i : i + batch]])
        cell.run_until_quiescent()


def test_aggregate_circuit_state_survives_crash(tmp_path):
    # uninterrupted reference
    ref_cell, ref_handle = _agg_cell(None)
    _feed(ref_cell, ROWS)
    reference = [tuple(r) for r in ref_handle.fetch()]

    # crash phase: checkpoint mid-stream, keep going, then die
    cell, handle = _agg_cell(tmp_path)
    _feed(cell, ROWS[:12])
    cell.checkpoint()
    _feed(cell, ROWS[12:20])
    pre = [tuple(r) for r in handle.fetch()]
    cell.durability.abandon()

    # recovery phase: same topology, same directory
    cell, handle = _agg_cell(tmp_path)
    report = cell.recover()
    assert report is not None
    cell.run_until_quiescent()
    remaining = ROWS[cell.basket("feed").total_in :]
    _feed(cell, remaining)
    post = [tuple(r) for r in handle.fetch()]
    cell.durability.close()

    assert pre + post == reference  # byte-identical delta sequence
    oneshot = Counter(integrate_weighted_rows(reference))
    assert Counter(integrate_weighted_rows(pre + post)) == oneshot


def _join_cell(directory):
    cell = DataCell(
        execution="incremental",
        durability=(
            DurabilityConfig(directory=directory, fsync="always")
            if directory is not None
            else None
        ),
    )
    cell.create_basket("lt", [("k", AtomType.INT), ("a", AtomType.INT)])
    cell.create_basket("rt", [("k", AtomType.INT), ("b", AtomType.INT)])
    handle = cell.submit_continuous(
        "select x.k, x.a, y.b from [select * from lt] as x, "
        "[select * from rt] as y where x.k = y.k",
        name="j",
    )
    return cell, handle


def test_join_circuit_state_survives_crash(tmp_path):
    left = [(i % 3, i) for i in range(16)]
    right = [(i % 5, 100 + i) for i in range(12)]

    def drive(cell, lrows, rrows):
        for i in range(0, max(len(lrows), len(rrows)), 4):
            if lrows[i : i + 4]:
                cell.insert("lt", [list(r) for r in lrows[i : i + 4]])
            if rrows[i : i + 4]:
                cell.insert("rt", [list(r) for r in rrows[i : i + 4]])
            cell.run_until_quiescent()

    ref_cell, ref_handle = _join_cell(None)
    drive(ref_cell, left, right)
    reference = [tuple(r) for r in ref_handle.fetch()]

    # splits land on drive() batch boundaries so reference and
    # crash+recovery ingest identical batches in identical order —
    # join emission order legitimately depends on arrival interleaving
    cell, handle = _join_cell(tmp_path)
    drive(cell, left[:8], right[:8])
    cell.checkpoint()
    drive(cell, left[8:12], right[8:12])
    pre = [tuple(r) for r in handle.fetch()]
    cell.durability.abandon()

    cell, handle = _join_cell(tmp_path)
    cell.recover()
    cell.run_until_quiescent()
    drive(
        cell,
        left[cell.basket("lt").total_in :],
        right[cell.basket("rt").total_in :],
    )
    post = [tuple(r) for r in handle.fetch()]
    cell.durability.close()

    assert pre + post == reference
    expected = Counter(
        (lk, la, rb) for lk, la in left for rk, rb in right if lk == rk
    )
    assert Counter(integrate_weighted_rows(pre + post)) == expected
