"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.ast_nodes import (
    BasketExpr,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateBasket,
    CreateTable,
    Drop,
    FuncCall,
    InList,
    Insert,
    IsNull,
    JoinSource,
    Star,
    SubquerySource,
    TableSource,
    UnaryOp,
    contains_basket_expr,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_select, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.type for t in tokens[:-1]] == [TokenType.KEYWORD] * 3

    def test_identifiers(self):
        tokens = tokenize("my_table col2")
        assert [t.value for t in tokens[:-1]] == ["my_table", "col2"]

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-2")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 3.14, 1000.0, 0.025]
        assert isinstance(values[0], int)

    def test_strings_with_escapes(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_line_comments(self):
        tokens = tokenize("select -- comment\n1")
        assert len(tokens) == 3  # select, 1, EOF

    def test_block_comments(self):
        tokens = tokenize("select /* multi\nline */ 1")
        assert len(tokens) == 3

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select /* oops")

    def test_operators_longest_match(self):
        tokens = tokenize("<= >= <> != =")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!=", "="]

    def test_brackets_for_basket_expr(self):
        tokens = tokenize("[ ]")
        assert [t.value for t in tokens[:-1]] == ["[", "]"]

    def test_position_tracking(self):
        tokens = tokenize("select\n  foo")
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "weird name"


class TestParserSelect:
    def test_minimal(self):
        s = parse_select("select a from t")
        assert isinstance(s.items[0].expr, ColumnRef)
        assert isinstance(s.sources[0], TableSource)

    def test_star(self):
        s = parse_select("select * from t")
        assert isinstance(s.items[0].expr, Star)

    def test_qualified_star(self):
        s = parse_select("select t.* from t")
        assert s.items[0].expr.table == "t"

    def test_aliases(self):
        s = parse_select("select a as x, b y from t z")
        assert s.items[0].alias == "x"
        assert s.items[1].alias == "y"
        assert s.sources[0].alias == "z"

    def test_where_precedence(self):
        s = parse_select("select a from t where a > 1 and b < 2 or c = 3")
        # or binds loosest
        assert isinstance(s.where, BinaryOp) and s.where.op == "or"
        assert s.where.left.op == "and"

    def test_arithmetic_precedence(self):
        s = parse_select("select a + b * c from t")
        expr = s.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus(self):
        s = parse_select("select -a from t where b > -5")
        assert isinstance(s.items[0].expr, UnaryOp)

    def test_between(self):
        s = parse_select("select a from t where a between 1 and 10")
        assert isinstance(s.where, Between)

    def test_not_between(self):
        s = parse_select("select a from t where a not between 1 and 10")
        assert s.where.negated

    def test_in_list(self):
        s = parse_select("select a from t where a in (1, 2, 3)")
        assert isinstance(s.where, InList)
        assert len(s.where.items) == 3

    def test_is_null(self):
        s = parse_select("select a from t where a is null")
        assert isinstance(s.where, IsNull) and not s.where.negated
        s = parse_select("select a from t where a is not null")
        assert s.where.negated

    def test_group_by_having(self):
        s = parse_select(
            "select a, sum(b) from t group by a having sum(b) > 10"
        )
        assert len(s.group_by) == 1
        assert s.having is not None

    def test_count_star(self):
        s = parse_select("select count(*) from t")
        assert s.items[0].expr.star

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select sum(*) from t")

    def test_order_limit(self):
        s = parse_select("select a from t order by a desc, b limit 5")
        assert s.order_by[0].descending
        assert not s.order_by[1].descending
        assert s.limit == 5

    def test_limit_must_be_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select a from t limit 2.5")

    def test_distinct(self):
        assert parse_select("select distinct a from t").distinct

    def test_case_when(self):
        s = parse_select(
            "select case when a > 0 then 'p' when a < 0 then 'n' "
            "else 'z' end from t"
        )
        expr = s.items[0].expr
        assert isinstance(expr, CaseWhen)
        assert len(expr.whens) == 2
        assert expr.otherwise is not None

    def test_cast(self):
        s = parse_select("select cast(a as int) from t")
        assert isinstance(s.items[0].expr, FuncCall)
        assert s.items[0].expr.name == "cast_int"

    def test_literals(self):
        s = parse_select("select 1, 2.5, 'x', null, true, false from t")
        values = [i.expr.value for i in s.items]
        assert values == [1, 2.5, "x", None, True, False]


class TestParserSources:
    def test_basket_expr_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select * from [select * from r]")

    def test_basket_expr(self):
        s = parse_select("select * from [select * from r] as b")
        src = s.sources[0]
        assert isinstance(src, BasketExpr)
        assert src.alias == "b"
        assert contains_basket_expr(s)

    def test_subquery(self):
        s = parse_select("select * from (select a from t) as sub")
        assert isinstance(s.sources[0], SubquerySource)

    def test_join_on(self):
        s = parse_select("select * from a join b on a.x = b.y")
        src = s.sources[0]
        assert isinstance(src, JoinSource)
        assert src.kind == "inner"

    def test_inner_join(self):
        s = parse_select("select * from a inner join b on a.x = b.y")
        assert s.sources[0].kind == "inner"

    def test_cross_join(self):
        s = parse_select("select * from a cross join b")
        assert s.sources[0].kind == "cross"

    def test_comma_sources(self):
        s = parse_select("select * from a, b, c")
        assert len(s.sources) == 3

    def test_chained_joins(self):
        s = parse_select(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        outer = s.sources[0]
        assert isinstance(outer.left, JoinSource)

    def test_no_basket_expr_is_one_time(self):
        s = parse_select("select * from t")
        assert not contains_basket_expr(s)

    def test_nested_basket_expr_in_subquery_detected(self):
        s = parse_select(
            "select * from (select * from [select * from r] as b) as s"
        )
        assert contains_basket_expr(s)


class TestParserStatements:
    def test_create_table(self):
        stmt = parse_statement("create table t (a int, b double)")
        assert isinstance(stmt, CreateTable)
        assert stmt.columns == [("a", "int"), ("b", "double")]

    def test_create_basket(self):
        stmt = parse_statement("create basket b (a int)")
        assert isinstance(stmt, CreateBasket)

    def test_create_stream_synonym(self):
        stmt = parse_statement("create stream s (a int)")
        assert isinstance(stmt, CreateBasket)

    def test_varchar_length_ignored(self):
        stmt = parse_statement("create table t (s varchar(42))")
        assert stmt.columns == [("s", "varchar")]

    def test_insert(self):
        stmt = parse_statement("insert into t values (1, 'a'), (2, 'b')")
        assert isinstance(stmt, Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("insert into t (b, a) values (1, 2)")
        assert stmt.columns == ["b", "a"]

    def test_drop(self):
        stmt = parse_statement("drop table t")
        assert isinstance(stmt, Drop) and stmt.name == "t"
        assert isinstance(parse_statement("drop basket b"), Drop)

    def test_trailing_semicolon_ok(self):
        parse_statement("select a from t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("select a from t garbage here")

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("update t set a = 1")

    def test_paper_q1_parses(self):
        """Query q1 verbatim from the paper (§2.6)."""
        s = parse_select(
            "select * from [select * from R] as S where S.a > 10"
        )
        assert contains_basket_expr(s)

    def test_paper_q2_parses(self):
        """Query q2 verbatim from the paper (§2.6)."""
        s = parse_select(
            "select * from [select * from R where R.b < 20] as S "
            "where S.a > 10"
        )
        inner = s.sources[0].select
        assert inner.where is not None
