"""Integration tests for the DataCell engine façade.

These drive the full user journey: DDL through SQL, continuous query
registration, stream ingest, scheduling, and result delivery — including
the paper's q1/q2 basket-expression semantics verbatim (§2.6).
"""

import pytest

from repro import DataCell, LogicalClock, WindowMode, WindowSpec
from repro.errors import BindError, CatalogError, DataCellError, SqlError


@pytest.fixture
def cell():
    return DataCell(clock=LogicalClock())


class TestDdl:
    def test_create_table_and_insert(self, cell):
        cell.execute("create table t (a int, b varchar(10))")
        cell.execute("insert into t values (1, 'x'), (2, 'y')")
        assert cell.query("select * from t") == [(1, "x"), (2, "y")]

    def test_create_basket(self, cell):
        cell.execute("create basket s (v int)")
        assert cell.basket("s").is_basket

    def test_create_stream_synonym(self, cell):
        cell.execute("create stream s (v int)")
        assert cell.basket("s").is_basket

    def test_drop(self, cell):
        cell.execute("create table t (a int)")
        cell.execute("drop table t")
        with pytest.raises(CatalogError):
            cell.query("select * from t")

    def test_duplicate_create_rejected(self, cell):
        cell.execute("create table t (a int)")
        with pytest.raises(CatalogError):
            cell.execute("create table T (a int)")

    def test_insert_with_column_order(self, cell):
        cell.execute("create table t (a int, b int)")
        cell.execute("insert into t (b, a) values (2, 1)")
        assert cell.query("select a, b from t") == [(1, 2)]

    def test_insert_negative_literals(self, cell):
        cell.execute("create table t (a int)")
        cell.execute("insert into t values (-5)")
        assert cell.query("select a from t") == [(-5,)]

    def test_insert_non_literal_rejected(self, cell):
        cell.execute("create table t (a int)")
        with pytest.raises(BindError):
            cell.execute("insert into t values (1 + 2)")

    def test_insert_into_basket_stamps_time(self, cell):
        cell.execute("create basket s (v int)")
        cell.clock.advance(7.0)
        cell.execute("insert into s values (1)")
        assert cell.basket("s").rows() == [(1, 7.0)]

    def test_basket_not_table(self, cell):
        cell.execute("create table t (a int)")
        with pytest.raises(DataCellError):
            cell.basket("t")

    def test_query_rejects_continuous(self, cell):
        cell.execute("create basket s (v int)")
        with pytest.raises(SqlError):
            cell.query("select * from [select * from s] as x")


class TestContinuousQueries:
    def test_paper_q1_all_tuples_considered(self, cell):
        """q1: basket expression requests all tuples, outer filters."""
        cell.execute("create basket R (a int)")
        q1 = cell.submit_continuous(
            "select * from [select * from R] as S where S.a > 10"
        )
        cell.insert("R", [(5,), (15,), (25,)])
        cell.run_until_quiescent()
        assert q1.fetch() == [(15,), (25,)]
        assert cell.basket("R").count == 0, (
            "q1 consumes all tuples, qualifying or not"
        )

    def test_paper_q2_predicate_window(self, cell):
        """q2: the basket expression filters first; only the predicate
        window is consumed, the rest stays."""
        cell.execute("create basket R (a int, b int)")
        q2 = cell.submit_continuous(
            "select * from [select * from R where R.b < 20] as S "
            "where S.a > 10"
        )
        cell.insert("R", [(15, 10), (15, 30), (5, 10)])
        cell.run_until_quiescent()
        assert q2.fetch() == [(15, 10)]
        # (15, 30) has b >= 20: outside the predicate window, stays
        leftover = [(r[0], r[1]) for r in cell.basket("R").rows()]
        assert leftover == [(15, 30)]

    def test_results_flow_incrementally(self, cell):
        cell.execute("create basket s (v int)")
        q = cell.submit_continuous(
            "select * from [select * from s] as x where x.v > 0"
        )
        cell.insert("s", [(1,)])
        cell.run_until_quiescent()
        assert q.fetch() == [(1,)]
        cell.insert("s", [(2,), (-1,)])
        cell.run_until_quiescent()
        assert q.fetch() == [(2,)]

    def test_multiple_queries_separate_baskets_by_default(self, cell):
        """Each continuous query consumes from the basket; with two
        plain-SQL queries on one basket, whoever fires first wins the
        tuples — the engine-level strategies module provides sharing."""
        cell.execute("create basket s (v int)")
        q1 = cell.submit_continuous(
            "select * from [select * from s] as x where x.v > 0"
        )
        cell.insert("s", [(1,)])
        cell.run_until_quiescent()
        assert q1.fetch() == [(1,)]

    def test_aggregate_continuous_query(self, cell):
        cell.execute("create basket s (grp varchar(5), v int)")
        q = cell.submit_continuous(
            "select x.grp, sum(x.v) total from [select * from s] as x "
            "group by x.grp order by x.grp"
        )
        cell.insert("s", [("a", 1), ("b", 10), ("a", 2)])
        cell.run_until_quiescent()
        assert q.fetch() == [("a", 3), ("b", 10)]

    def test_stream_table_join(self, cell):
        """Continuous query joining a stream against a static table."""
        cell.execute("create table whitelist (v int)")
        cell.execute("insert into whitelist values (1), (3)")
        cell.execute("create basket s (v int, payload varchar(5))")
        q = cell.submit_continuous(
            "select x.payload from [select * from s] as x "
            "join whitelist w on x.v = w.v"
        )
        cell.insert("s", [(1, "keep"), (2, "drop"), (3, "keep2")])
        cell.run_until_quiescent()
        assert q.fetch() == [("keep",), ("keep2",)]

    def test_cancel(self, cell):
        cell.execute("create basket s (v int)")
        q = cell.submit_continuous(
            "select * from [select * from s] as x"
        )
        q.cancel()
        cell.insert("s", [(1,)])
        cell.run_until_quiescent()
        assert q.fetch() == []
        assert cell.basket("s").count == 1
        assert cell.continuous_queries() == []

    def test_explain_returns_mal(self, cell):
        cell.execute("create basket s (v int)")
        q = cell.submit_continuous("select * from [select * from s] as x")
        text = q.explain()
        assert "algebra" in text or "resultset" in text

    def test_dc_time_selectable(self, cell):
        cell.clock.advance(2.5)
        cell.execute("create basket s (v int)")
        q = cell.submit_continuous(
            "select x.v, x.dc_time from [select * from s] as x"
        )
        cell.insert("s", [(1,)])
        cell.run_until_quiescent()
        assert q.fetch() == [(1, 2.5)]

    def test_submit_requires_select(self, cell):
        with pytest.raises(SqlError):
            cell.submit_continuous("create table t (a int)")

    def test_named_query(self, cell):
        cell.execute("create basket s (v int)")
        q = cell.submit_continuous(
            "select * from [select * from s] as x", name="myq"
        )
        assert q.name == "myq"
        assert cell.scheduler.get("myq") is q.factory


class TestWindowApi:
    def test_window_aggregate(self, cell):
        cell.execute("create basket ticks (price double)")
        q = cell.submit_window_aggregate(
            "ticks", "price", ["avg"], WindowSpec(WindowMode.COUNT, 4, 2)
        )
        for i in range(8):
            cell.insert("ticks", [(float(i),)])
        cell.run_until_quiescent()
        assert q.fetch() == [(0, 1.5), (1, 3.5), (2, 5.5)]

    def test_window_routes_agree_through_engine(self, cell):
        cell.execute("create basket t1 (v double)")
        cell.execute("create basket t2 (v double)")
        qi = cell.submit_window_aggregate(
            "t1", "v", ["sum", "max"], WindowSpec(WindowMode.COUNT, 6, 3),
            incremental=True,
        )
        qr = cell.submit_window_aggregate(
            "t2", "v", ["sum", "max"], WindowSpec(WindowMode.COUNT, 6, 3),
            incremental=False,
        )
        for i in range(20):
            cell.insert("t1", [(float(i % 7),)])
            cell.insert("t2", [(float(i % 7),)])
        cell.run_until_quiescent()
        assert qi.fetch() == qr.fetch()

    def test_grouped_window_through_engine(self, cell):
        cell.execute("create basket s (g varchar(3), v double)")
        q = cell.submit_window_aggregate(
            "s", "v", ["sum"], WindowSpec(WindowMode.COUNT, 4),
            group_by="g",
        )
        cell.insert("s", [("a", 1.0), ("a", 2.0), ("b", 4.0), ("b", 8.0)])
        cell.run_until_quiescent()
        assert sorted(q.fetch()) == [(0, "a", 3.0), (0, "b", 12.0)]


class TestReceptorsEmitters:
    def test_receptor_to_query_to_channel(self, cell):
        from repro.adapters.channels import InMemoryChannel

        cell.execute("create basket s (v int)")
        receptor = cell.add_receptor("rx", ["s"])
        q = cell.submit_continuous(
            "select * from [select * from s] as x where x.v >= 10"
        )
        sink = InMemoryChannel("sink")
        q.subscribe_channel(sink)
        receptor.channel.push_many(["5", "15", "25"])
        cell.run_until_quiescent()
        assert sink.poll() == ["15", "25"]

    def test_extra_emitter(self, cell):
        cell.execute("create basket s (v int)")
        collected = []
        emitter = cell.add_emitter("ex", "s")
        emitter.subscribe(lambda rows: collected.extend(rows))
        cell.insert("s", [(1,)])
        cell.run_until_quiescent()
        assert collected == [(1,)]


class TestThreadedEngine:
    def test_start_stop_roundtrip(self, cell):
        import time

        cell.execute("create basket s (v int)")
        q = cell.submit_continuous(
            "select * from [select * from s] as x where x.v > 0"
        )
        cell.start()
        try:
            cell.insert("s", [(1,), (2,)])
            deadline = time.time() + 5
            while len(q.peek()) < 2 and time.time() < deadline:
                time.sleep(0.005)
        finally:
            cell.stop()
        assert sorted(q.fetch()) == [(1,), (2,)]
