"""Round-trip property of the durability wire format.

Every atom type the kernel stores must survive
``encode_column``/``decode_column`` exactly — including the in-domain
NIL sentinels (the wire format has no validity bitmap on purpose),
empty columns, and the object-dtype STR representation.  The frame
layer must detect corruption anywhere in a payload and treat a short
tail as torn, never as data.
"""

import numpy as np
import pytest

from repro.durability.serde import (
    decode_column,
    encode_column,
    frames_with_tail,
    iter_frames,
    pack_frame,
    unpack_frame,
)
from repro.errors import DurabilityError
from repro.kernel.types import (
    BOOL_NIL,
    INT_NIL,
    LNG_NIL,
    OID_NIL,
    AtomType,
    numpy_dtype,
)

FIXED_CASES = [
    (AtomType.OID, [0, 7, int(OID_NIL), 2**40]),
    (AtomType.BOOL, [1, 0, int(BOOL_NIL), 1]),
    (AtomType.INT, [-3, 0, int(INT_NIL), 2**30]),
    (AtomType.LNG, [-(2**62), 0, int(LNG_NIL), 5]),
    (AtomType.DBL, [1.5, -0.25, float("nan"), 1e300]),
    (AtomType.TIMESTAMP, [0.0, 1700000000.25, float("nan")]),
]


@pytest.mark.parametrize(
    "atom,values", FIXED_CASES, ids=[a.value for a, _ in FIXED_CASES]
)
def test_fixed_atom_round_trip_preserves_nil_sentinels(atom, values):
    array = np.array(values, dtype=numpy_dtype(atom))
    out = decode_column(atom, encode_column(atom, array))
    assert out.dtype == numpy_dtype(atom)
    assert np.array_equal(out, array, equal_nan=atom in (
        AtomType.DBL, AtomType.TIMESTAMP
    ))


@pytest.mark.parametrize(
    "atom", [a for a, _ in FIXED_CASES] + [AtomType.STR],
    ids=[a.value for a, _ in FIXED_CASES] + ["str"],
)
def test_empty_column_round_trip(atom):
    array = np.empty(0, dtype=numpy_dtype(atom))
    out = decode_column(atom, encode_column(atom, array))
    assert out.dtype == numpy_dtype(atom)
    assert len(out) == 0


def test_str_round_trip_none_nil_unicode_and_empty_string():
    array = np.empty(5, dtype=object)
    array[:] = ["plain", None, "", "naïve — ünïcødé", "x" * 1000]
    out = decode_column(AtomType.STR, encode_column(AtomType.STR, array))
    assert out.dtype == np.dtype(object)
    assert list(out) == list(array)


def test_str_accepts_plain_python_list():
    out = decode_column(
        AtomType.STR, encode_column(AtomType.STR, ["a", None, "b"])
    )
    assert list(out) == ["a", None, "b"]


def test_decode_rejects_truncated_fixed_payload():
    payload = encode_column(AtomType.LNG, np.array([1, 2, 3], dtype=np.int64))
    with pytest.raises(DurabilityError):
        decode_column(AtomType.LNG, payload[:-4])


def test_decode_rejects_truncated_str_payload():
    payload = encode_column(AtomType.STR, ["hello", "world"])
    with pytest.raises(DurabilityError):
        decode_column(AtomType.STR, payload[:-3])


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def test_frame_round_trip_and_sequencing():
    buffer = pack_frame(b"one") + pack_frame(b"two") + pack_frame(b"three")
    assert list(iter_frames(buffer)) == [b"one", b"two", b"three"]
    payloads, torn = frames_with_tail(buffer)
    assert payloads == [b"one", b"two", b"three"]
    assert torn is False


def test_short_tail_is_torn_not_data():
    buffer = pack_frame(b"keep") + pack_frame(b"lost-in-crash")[:-2]
    payloads, torn = frames_with_tail(buffer)
    assert payloads == [b"keep"]
    assert torn is True


def test_corrupt_byte_anywhere_stops_the_read():
    frames = [pack_frame(f"rec{i}".encode()) for i in range(4)]
    buffer = b"".join(frames)
    # flip one byte inside the third frame's payload
    position = len(frames[0]) + len(frames[1]) + len(frames[2]) - 1
    corrupted = (
        buffer[:position]
        + bytes([buffer[position] ^ 0xFF])
        + buffer[position + 1 :]
    )
    payloads, torn = frames_with_tail(corrupted)
    assert payloads == [b"rec0", b"rec1"]
    assert torn is True


def test_unpack_frame_none_on_short_header():
    assert unpack_frame(b"\x01\x02", 0) is None
