"""Crash recovery end to end: checkpoint + WAL replay, exactly-once.

Each test builds an engine with durability, kills it (``abandon`` — no
final fsync, exactly what a dead process leaves), rebuilds the same
topology, recovers, and checks the delivered stream: rows delivered
before the crash are never re-delivered (the emitter high-water mark),
rows in flight at the crash are delivered after recovery (WAL replay),
and nothing is lost or invented.
"""

import pytest

from repro.core.engine import DataCell
from repro.core.windows import WindowMode, WindowSpec
from repro.durability import DurabilityConfig
from repro.durability.wal import list_segments
from repro.errors import DataCellError
from repro.kernel.types import AtomType

SQL = "select x.a, x.b from [select * from feed where feed.a > 1] as x"


def _build(tmp_path, fsync="interval"):
    cell = DataCell(
        durability=DurabilityConfig(directory=tmp_path, fsync=fsync)
    )
    cell.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.INT)])
    handle = cell.submit_continuous(SQL, name="q")
    return cell, handle


def test_wal_only_recovery_delivers_in_flight_rows(tmp_path):
    cell, handle = _build(tmp_path)
    cell.basket("feed").insert_rows([(1, 10), (2, 20)])
    cell.run_until_quiescent()
    assert handle.fetch() == [(2, 20)]
    cell.basket("feed").insert_rows([(3, 30), (4, 40)])
    cell.durability.abandon()  # crash before the scheduler ran

    cell2, handle2 = _build(tmp_path)
    report = cell2.recover()
    assert report.checkpoint_id is None
    assert report.rows_replayed == 4
    cell2.run_until_quiescent()
    # (2,20) was delivered pre-crash: suppressed. (3,30),(4,40) were not.
    assert handle2.fetch() == [(3, 30), (4, 40)]
    cell2.durability.close()


def test_checkpoint_plus_wal_suffix(tmp_path):
    cell, handle = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1), (3, 1)])
    cell.run_until_quiescent()
    assert len(handle.fetch()) == 2
    cell.checkpoint()
    cell.basket("feed").insert_rows([(4, 1)])  # post-checkpoint suffix
    cell.durability.abandon()

    cell2, handle2 = _build(tmp_path)
    report = cell2.recover()
    assert report.checkpoint_id == 1
    assert report.rows_replayed == 1  # only the suffix replays
    cell2.run_until_quiescent()
    assert handle2.fetch() == [(4, 1)]
    cell2.durability.close()


def test_no_duplicates_across_repeated_crashes(tmp_path):
    cell, handle = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1), (3, 2)])
    cell.run_until_quiescent()
    first = handle.fetch()
    cell.durability.abandon()

    # crash the recovered engine too, before it ingests anything new
    cell2, handle2 = _build(tmp_path)
    cell2.recover()
    cell2.run_until_quiescent()
    assert handle2.fetch() == []  # everything was already delivered
    cell2.durability.abandon()

    cell3, handle3 = _build(tmp_path)
    cell3.recover()
    cell3.run_until_quiescent()
    assert handle3.fetch() == []
    cell3.basket("feed").insert_rows([(9, 9)])
    cell3.run_until_quiescent()
    assert first + handle3.fetch() == [(2, 1), (3, 2), (9, 9)]
    cell3.durability.close()


def test_window_aggregate_recovers_mid_window(tmp_path):
    def build(path):
        cell = DataCell(durability=DurabilityConfig(directory=path))
        cell.create_basket("feed", [("v", AtomType.INT)])
        handle = cell.submit_window_aggregate(
            "feed", "v", ["sum"],
            WindowSpec(WindowMode.COUNT, 4, 2), name="q",
        )
        return cell, handle

    # uninterrupted reference over the same 10 values
    values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    ref_cell = DataCell()
    ref_cell.create_basket("feed", [("v", AtomType.INT)])
    ref = ref_cell.submit_window_aggregate(
        "feed", "v", ["sum"], WindowSpec(WindowMode.COUNT, 4, 2), name="q"
    )
    ref_cell.basket("feed").insert_rows([(v,) for v in values])
    ref_cell.run_until_quiescent()
    reference = sorted(ref.fetch())

    cell, handle = build(tmp_path)
    cell.basket("feed").insert_rows([(v,) for v in values[:5]])
    cell.run_until_quiescent()  # window [1..4] fired; [3..6] is half full
    pre = handle.fetch()
    cell.checkpoint()
    cell.basket("feed").insert_rows([(values[5],)])  # in the WAL suffix
    cell.durability.abandon()

    cell2, handle2 = build(tmp_path)
    cell2.recover()
    cell2.run_until_quiescent()
    mid = handle2.fetch()
    cell2.basket("feed").insert_rows([(v,) for v in values[6:]])
    cell2.run_until_quiescent()
    post = handle2.fetch()
    assert sorted(pre + mid + post) == reference
    cell2.durability.close()


def test_torn_wal_tail_keeps_the_valid_prefix(tmp_path):
    cell, handle = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1)])
    cell.basket("feed").insert_rows([(3, 1)])
    cell.durability.abandon()
    # chop bytes off the active segment: the second insert becomes torn
    segments = list_segments(tmp_path / "wal")
    newest = segments[-1][1]
    newest.write_bytes(newest.read_bytes()[:-5])

    cell2, handle2 = _build(tmp_path)
    report = cell2.recover()
    assert report.torn_tail is True
    assert report.rows_replayed == 1
    cell2.run_until_quiescent()
    assert handle2.fetch() == [(2, 1)]
    cell2.durability.close()


def test_recovery_requires_identical_topology(tmp_path):
    cell, _ = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1)])
    cell.durability.abandon()

    fresh = DataCell(durability=DurabilityConfig(directory=tmp_path))
    # no 'feed' basket registered: replaying its records must fail loudly
    with pytest.raises(DataCellError):
        fresh.recover()
    fresh.durability.close()


def test_durability_disabled_writes_nothing(tmp_path):
    cell = DataCell()
    cell.create_basket("feed", [("a", AtomType.INT)])
    assert cell.durability is None
    assert cell.basket("feed").wal_sink is None
    cell.basket("feed").insert_rows([(1,)])
    assert list(tmp_path.iterdir()) == []
    with pytest.raises(DataCellError):
        cell.checkpoint()


def test_emit_suppression_handles_partial_batch(tmp_path):
    """A firing that mixes replayed and fresh rows delivers only fresh."""
    cell, handle = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1), (3, 1)])
    cell.run_until_quiescent()
    assert len(handle.fetch()) == 2
    cell.durability.abandon()

    cell2, handle2 = _build(tmp_path)
    cell2.recover()
    # insert fresh rows BEFORE draining: the emitter's first activation
    # sees replayed (suppressed) and fresh rows in one snapshot
    cell2.basket("feed").insert_rows([(5, 5)])
    cell2.run_until_quiescent()
    assert handle2.fetch() == [(5, 5)]
    cell2.durability.close()


def test_recovered_stats_surface(tmp_path):
    cell, _ = _build(tmp_path)
    cell.basket("feed").insert_rows([(2, 1)])
    cell.durability.abandon()
    cell2, _ = _build(tmp_path)
    cell2.recover()
    stats = cell2.stats()["durability"]
    assert stats["recovered"] is True
    assert stats["recovery_seconds"] is not None
    assert "Durability" in cell2.render_dashboard()
    cell2.durability.close()
