"""Flight recorder: stall detection, exception capture, post-mortems."""

import json
import time

import pytest

from repro import DataCell
from repro.core.factory import CallablePlan
from repro.kernel.types import AtomType
from repro.obs.flightrec import FlightRecorder

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_wedged_cell():
    """A cell whose only factory never fires: the classic silent wedge."""
    cell = DataCell()
    cell.execute("create basket sensors (sensor int, temp double)")
    query = cell.submit_continuous(CQ, name="q1")
    query.factory.enabled = lambda: False  # wedge it
    return cell, query


def drive_stall(cell, recorder, rounds=5):
    """Insert while the factory is wedged, sampling after each append."""
    stall = None
    for i in range(rounds):
        cell.insert("sensors", [(i, 45.0)])
        cell.run_until_quiescent()  # nothing enabled: firings stay flat
        stall = recorder.sample() or stall
    return stall


class TestStallDetection:
    def test_wedged_factory_detected(self):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3)
        stall = drive_stall(cell, recorder)
        assert stall is not None
        assert stall.baskets == ["sensors"]
        assert "q1" in stall.transitions
        assert stall.firings == 0
        assert recorder.stalls == [stall]
        # the stall is also visible in the engine-wide trace ring
        kinds = [e.kind for e in cell.trace.events()]
        assert "stall" in kinds

    def test_healthy_pipeline_never_stalls(self):
        cell = DataCell()
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.submit_continuous(CQ, name="q1")
        recorder = FlightRecorder(cell, window=3)
        for i in range(6):
            cell.insert("sensors", [(i, 45.0)])
            cell.run_until_quiescent()  # consumes: firings advance
            assert recorder.sample() is None
        assert recorder.stalls == []

    def test_flat_depth_is_not_a_stall(self):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3)
        for _ in range(5):  # idle engine: flat firings AND flat depth
            assert recorder.sample() is None

    def test_draining_basket_is_backpressure_not_stall(self):
        cell, query = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3)
        cell.insert("sensors", [(1, 45.0), (2, 46.0)])
        recorder.sample()
        # mid-window the factory briefly unwedges and drains one tuple:
        # depth dips, so the monotone-rise signature must not match
        query.factory.enabled = lambda: True
        cell.step()
        query.factory.enabled = lambda: False
        recorder.sample()
        cell.insert("sensors", [(3, 47.0), (4, 48.0), (5, 49.0)])
        assert recorder.sample() is None

    def test_stall_reported_once_per_episode(self):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3)
        stall = None
        rounds = 0
        while stall is None:
            cell.insert("sensors", [(rounds, 45.0)])
            stall = recorder.sample()
            rounds += 1
        assert rounds == 3  # exactly one full window
        # detection cleared the window: the stall cannot re-report until
        # a whole new window again shows the signature
        for i in range(recorder.window - 1):
            cell.insert("sensors", [(100 + i, 45.0)])
            assert recorder.sample() is None
        cell.insert("sensors", [(999, 45.0)])
        assert recorder.sample() is not None  # still wedged a window later

    def test_window_validation(self):
        cell, _ = build_wedged_cell()
        with pytest.raises(ValueError):
            FlightRecorder(cell, window=1)

    def test_auto_dump_on_stall(self, tmp_path):
        path = str(tmp_path / "flight.json")
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3, auto_dump_path=path)
        drive_stall(cell, recorder)
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["reason"] == "stall"
        assert doc["stalls"][0]["baskets"] == ["sensors"]


class TestDumpContents:
    def test_dump_has_stacks_and_depths(self, tmp_path):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=3)
        stall = drive_stall(cell, recorder)
        assert stall is not None
        path = str(tmp_path / "flight.json")
        doc = recorder.dump(path, reason="stall")
        with open(path) as handle:
            assert json.load(handle) == json.loads(json.dumps(doc, default=str))

        # every thread's stack, including this test's own frame
        assert doc["thread_stacks"]
        own = "\n".join(
            line for frames in doc["thread_stacks"].values()
            for line in frames
        )
        assert "test_dump_has_stacks_and_depths" in own

        # the stalled transition's basket depths are in the post-mortem
        assert doc["baskets"]["sensors"]["depth"] == 5
        assert doc["baskets"]["sensors"]["high_water"] == 5
        assert doc["factories"]["q1"]["activations"] == 0
        assert doc["factories"]["q1"]["inputs"][0]["basket"] == "sensors"
        assert doc["transitions"]["q1"]["enabled"] is False
        assert doc["stalls"][0]["baskets"] == ["sensors"]

    def test_dump_includes_spans_and_trace(self, tmp_path):
        from repro.obs.spans import SpanRecorder

        cell = DataCell(spans=SpanRecorder(sample_rate=1))
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.submit_continuous(CQ, name="q1")
        rx = cell.add_receptor("rx", ["sensors"])
        rx.channel.push("1, 45.0")
        cell.run_until_quiescent()
        doc = cell.dump_flight_record(str(tmp_path / "f.json"))
        assert doc["reason"] == "manual"
        assert doc["spans"]["sampled_batches"] == 1
        kinds = {s["kind"] for s in doc["spans"]["finished"]}
        assert {"batch", "receptor", "factory", "emitter"} <= kinds
        assert doc["trace_events"]  # scheduler ring is populated

    def test_dump_embeds_system_stream_tails(self, tmp_path):
        from repro.core.clock import LogicalClock
        from repro.obs.sysstreams import SYS_EVENTS, SYS_METRICS

        clock = LogicalClock()
        cell = DataCell(clock=clock, system_streams=True)
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.submit_continuous(CQ, name="q1")
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        clock.advance(1.0)
        cell.run_until_quiescent()  # one sampler tick fills sys.metrics
        cell.sys.emit_event("error", "synthetic", detail="for the dump")

        path = str(tmp_path / "f.json")
        doc = cell.dump_flight_record(path)
        # the post-mortem must survive a JSON round trip intact
        with open(path) as handle:
            assert json.load(handle) == json.loads(json.dumps(doc, default=str))

        tails = doc["sys_streams"]
        assert set(tails) == {SYS_METRICS, SYS_EVENTS}
        metrics_tail = tails[SYS_METRICS]
        assert "metric" in metrics_tail["columns"]
        assert metrics_tail["rows"]
        names = {row[metrics_tail["columns"].index("metric")]
                 for row in metrics_tail["rows"]}
        assert any(n.startswith("datacell_") for n in names)
        events_tail = tails[SYS_EVENTS]
        kind_col = events_tail["columns"].index("kind")
        assert "error" in {row[kind_col] for row in events_tail["rows"]}

    def test_dump_without_system_streams_is_empty(self, tmp_path):
        cell, _ = build_wedged_cell()
        doc = cell.dump_flight_record(str(tmp_path / "f.json"))
        assert doc["sys_streams"] == {}

    def test_system_baskets_never_trip_the_stall_detector(self):
        # sys.* baskets fill every tick with nobody consuming them — by
        # design.  The monotone-rise signature must ignore them.
        from repro.core.clock import LogicalClock

        clock = LogicalClock()
        cell = DataCell(clock=clock, system_streams=True)
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.submit_continuous(CQ, name="q1")
        recorder = FlightRecorder(cell, window=3)
        for i in range(6):
            cell.insert("sensors", [(i, 45.0)])
            cell.run_until_quiescent()
            clock.advance(1.0)
            cell.run_until_quiescent()  # sys.metrics grows monotonically
            assert recorder.sample() is None
        assert recorder.stalls == []

    def test_broken_enabled_survives_snapshot(self):
        cell, query = build_wedged_cell()

        def boom():
            raise RuntimeError("broken transition")

        query.factory.enabled = boom
        recorder = FlightRecorder(cell, window=3)
        doc = recorder.snapshot()
        assert doc["transitions"]["q1"]["enabled"] is None


class TestExceptionCapture:
    def test_factory_exception_recorded_and_reraised(self):
        cell = DataCell()
        cell.execute("create basket src (v int)")

        def explode(snapshots):
            raise RuntimeError("plan blew up")

        cell.submit_plan(
            "bad", CallablePlan(explode, default_output="bad_out"),
            ["src"], [("v", AtomType.INT)],
        )
        cell.insert("src", [(1,)])
        with pytest.raises(RuntimeError, match="plan blew up"):
            cell.run_until_quiescent()
        entries = cell.flight.exceptions
        assert len(entries) == 1
        assert entries[0]["transition"] == "bad"
        assert entries[0]["type"] == "RuntimeError"
        assert any("plan blew up" in line for line in entries[0]["traceback"])
        # the error also lands in the trace ring
        assert any(e.kind == "error" for e in cell.trace.events())

    def test_exception_auto_dump(self, tmp_path):
        path = str(tmp_path / "crash.json")
        cell = DataCell()
        cell.execute("create basket src (v int)")
        cell.flight.auto_dump_path = path

        def explode(snapshots):
            raise ValueError("bad tuple")

        cell.submit_plan(
            "bad", CallablePlan(explode, default_output="bad_out"),
            ["src"], [("v", AtomType.INT)],
        )
        cell.insert("src", [(1,)])
        with pytest.raises(ValueError):
            cell.run_until_quiescent()
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["reason"] == "exception"
        assert doc["exceptions"][0]["type"] == "ValueError"

    def test_exception_log_bounded(self):
        cell, _ = build_wedged_cell()
        for i in range(50):
            cell.flight.record_exception("t", RuntimeError(str(i)))
        assert len(cell.flight.exceptions) == 32
        assert cell.flight.exceptions[-1]["message"] == "49"


class TestWatchdog:
    def test_watchdog_thread_lifecycle(self):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=2)
        assert not recorder.running
        recorder.start(interval=0.01)
        try:
            assert recorder.running
            deadline = time.monotonic() + 2.0
            while not recorder._samples and time.monotonic() < deadline:
                time.sleep(0.005)
            assert recorder._samples  # it is sampling on its own
        finally:
            recorder.stop()
        assert not recorder.running

    def test_watchdog_detects_stall_in_background(self):
        cell, _ = build_wedged_cell()
        recorder = FlightRecorder(cell, window=2)
        recorder.start(interval=0.01)
        try:
            deadline = time.monotonic() + 2.0
            i = 0
            while not recorder.stalls and time.monotonic() < deadline:
                cell.insert("sensors", [(i, 45.0)])
                i += 1
                time.sleep(0.01)
        finally:
            recorder.stop()
        assert recorder.stalls
        assert recorder.stalls[0].baskets == ["sensors"]
