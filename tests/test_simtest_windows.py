"""Window geometry edge cases through the simulator and the baselines.

Each case runs the engine's window-aggregate factory inside the
simulated scheduler and compares its ordered results with the naive
per-tuple re-evaluation baseline fed the same delivered stream — the
engine's answer must not depend on how activations chop the stream, nor
on the firing order, nor on min-tuples batching thresholds.
"""

import pytest

from repro.simtest import run_window_differential


def assert_windows_agree(streaming, naive):
    assert streaming == naive, f"streaming {streaming} != naive {naive}"


class TestGeometryEdgeCases:
    @pytest.mark.parametrize("policy", ["priority", "random", "inverted"])
    def test_tumbling_slide_equals_size(self, policy):
        streaming, naive, _ = run_window_differential(
            4, 4, list(range(17)), aggregate="sum", seed=1, policy=policy
        )
        assert len(naive) == 4  # 17 tuples: windows close at 4, 8, 12, 16
        assert_windows_agree(streaming, naive)

    @pytest.mark.parametrize("aggregate", ["sum", "count", "avg", "min", "max"])
    def test_size_one_window(self, aggregate):
        streaming, naive, _ = run_window_differential(
            1, 1, [5, 3, 9, 1], aggregate=aggregate, seed=2
        )
        assert len(naive) == 4  # every tuple closes its own window
        assert_windows_agree(streaming, naive)

    def test_overlapping_slide_smaller_than_size(self):
        streaming, naive, _ = run_window_differential(
            5, 2, list(range(23)), aggregate="avg", seed=3, policy="random"
        )
        assert_windows_agree(streaming, naive)

    def test_min_count_above_batch_size(self):
        # the factory's firing threshold exceeds every delivered batch,
        # so no single activation satisfies it — tuples must accumulate
        # across activations and the tail is flushed by the harness
        streaming, naive, _ = run_window_differential(
            5, 2, list(range(29)), seed=4, batch_size=3, min_tuples=9
        )
        assert naive  # the stream closes windows
        assert_windows_agree(streaming, naive)

    def test_empty_activation_stream_shorter_than_window(self):
        streaming, naive, _ = run_window_differential(
            10, 5, [1, 2, 3], seed=5
        )
        assert naive == []  # never enough tuples to close a window
        assert_windows_agree(streaming, naive)

    def test_empty_stream(self):
        streaming, naive, _ = run_window_differential(3, 3, [], seed=6)
        assert streaming == [] and naive == []


class TestWindowsUnderAdversity:
    @pytest.mark.parametrize("seed", range(3))
    def test_windows_with_batch_faults(self, seed):
        streaming, naive, _ = run_window_differential(
            6,
            2,
            list(range(40)),
            aggregate="max",
            seed=seed,
            policy="random",
            batch_size=4,
            batch_fault_rate=0.4,
        )
        assert_windows_agree(streaming, naive)

    def test_reeval_vs_incremental_paths_agree(self):
        rows = list(range(31))
        inc, naive_a, _ = run_window_differential(
            7, 3, rows, seed=9, incremental=True
        )
        reeval, naive_b, _ = run_window_differential(
            7, 3, rows, seed=9, incremental=False
        )
        assert inc == naive_a
        assert reeval == naive_b
        assert inc == reeval

    def test_episode_reproducible(self):
        kwargs = dict(
            size=5,
            slide=2,
            rows=list(range(25)),
            seed=11,
            policy="random",
            batch_fault_rate=0.3,
        )
        _, _, first = run_window_differential(**kwargs)
        _, _, second = run_window_differential(**kwargs)
        assert first.firings == second.firings
