"""Tests for the WINDOW n [SLIDE m] language extension (§3.1 as syntax)."""

import pytest

from repro import DataCell, LogicalClock
from repro.errors import SqlError, SqlSyntaxError
from repro.sql.parser import parse_select


@pytest.fixture
def cell():
    c = DataCell(clock=LogicalClock())
    c.execute("create basket ticks (sym varchar(5), price double)")
    return c


def feed(cell, n=8):
    for i in range(n):
        cell.insert("ticks", [("A" if i % 2 else "B", float(i))])
    cell.run_until_quiescent()


class TestParsing:
    def test_window_clause(self):
        s = parse_select(
            "select avg(p) from [select * from b] as x window 10 slide 5"
        )
        assert s.window == 10 and s.window_slide == 5

    def test_window_without_slide_is_tumbling(self):
        s = parse_select("select avg(p) from [select * from b] as x window 10")
        assert s.window == 10 and s.window_slide is None

    def test_window_requires_positive_number(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("select avg(p) from [select * from b] as x window 0")

    def test_fractional_count_window_rejected_at_submit(self):
        from repro import DataCell, LogicalClock
        from repro.errors import DataCellError

        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket b (p double)")
        with pytest.raises(DataCellError):
            cell.submit_continuous(
                "select avg(x.p) from [select * from b] as x window 2.5"
            )

    def test_window_still_usable_as_identifier(self):
        s = parse_select("select window from t")
        assert s.window is None

    def test_time_window_clause(self):
        s = parse_select(
            "select avg(p) from [select * from b] as x "
            "window 10 seconds slide 5 seconds"
        )
        assert s.window == 10 and s.window_slide == 5 and s.window_time

    def test_time_window_fractional(self):
        s = parse_select(
            "select avg(p) from [select * from b] as x window 2.5 seconds"
        )
        assert s.window == 2.5 and s.window_time

    def test_mismatched_units_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select(
                "select avg(p) from [select * from b] as x "
                "window 10 slide 5 seconds"
            )


class TestExecution:
    def test_tumbling_aggregate(self, cell):
        q = cell.submit_continuous(
            "select sum(x.price) from [select * from ticks] as x window 4"
        )
        feed(cell)
        assert q.fetch() == [(0, 6.0), (1, 22.0)]

    def test_sliding_multiple_aggregates(self, cell):
        q = cell.submit_continuous(
            "select avg(x.price), max(x.price) from "
            "[select * from ticks] as x window 4 slide 2"
        )
        feed(cell)
        assert q.fetch() == [(0, 1.5, 3.0), (1, 3.5, 5.0), (2, 5.5, 7.0)]

    def test_count_star(self, cell):
        q = cell.submit_continuous(
            "select count(*) from [select * from ticks] as x window 3"
        )
        feed(cell, 7)
        assert q.fetch() == [(0, 3), (1, 3)]

    def test_grouped_window(self, cell):
        q = cell.submit_continuous(
            "select x.sym, sum(x.price) from [select * from ticks] as x "
            "group by x.sym window 4"
        )
        feed(cell)
        assert sorted(q.fetch()) == [
            (0, "A", 4.0), (0, "B", 2.0), (1, "A", 12.0), (1, "B", 10.0),
        ]

    def test_time_window_execution(self, cell):
        q = cell.submit_continuous(
            "select sum(x.price) from [select * from ticks] as x "
            "window 2 seconds"
        )
        for i in range(8):
            cell.clock.set(float(i) * 0.5)
            cell.insert("ticks", [("A", float(i))])
            cell.run_until_quiescent()
        # windows [0,2): t=0,0.5,1.0,1.5 -> 0+1+2+3
        assert q.fetch() == [(0, 6.0)]

    def test_stream_fully_consumed(self, cell):
        cell.submit_continuous(
            "select sum(x.price) from [select * from ticks] as x window 4"
        )
        feed(cell)
        assert cell.basket("ticks").count == 0


class TestValidation:
    def test_requires_basket_expression(self, cell):
        cell.execute("create table plain (p double)")
        with pytest.raises(SqlError):
            cell.submit_continuous(
                "select avg(p) from plain as x window 4"
            )

    def test_rejects_inner_where(self, cell):
        with pytest.raises(SqlError):
            cell.submit_continuous(
                "select avg(x.price) from "
                "[select * from ticks where ticks.price > 1] as x window 4"
            )

    def test_rejects_non_aggregate_items(self, cell):
        with pytest.raises(SqlError):
            cell.submit_continuous(
                "select x.price from [select * from ticks] as x window 4"
            )

    def test_rejects_mixed_value_columns(self, cell):
        cell.execute("create basket two (a double, b double)")
        with pytest.raises(SqlError):
            cell.submit_continuous(
                "select sum(x.a), sum(x.b) from [select * from two] as x "
                "window 4"
            )

    def test_rejects_order_by(self, cell):
        with pytest.raises(SqlError):
            cell.submit_continuous(
                "select avg(x.price) from [select * from ticks] as x "
                "order by 1 window 4"
            )

    def test_group_key_in_select_list_allowed(self, cell):
        q = cell.submit_continuous(
            "select x.sym, count(*) from [select * from ticks] as x "
            "group by x.sym window 2"
        )
        feed(cell, 4)
        assert sorted(q.fetch()) == [(0, "A", 1), (0, "B", 1),
                                     (1, "A", 1), (1, "B", 1)]
