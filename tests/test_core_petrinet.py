"""Unit and property tests for the Petri-net processing model (§2.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.petrinet import MarkedPlace, PetriNet, Transition
from repro.errors import SchedulerError


def simple_chain(initial=3):
    """R -> B1 -> Q -> B2 -> E, the Figure 1 topology as a pure net."""
    net = PetriNet()
    stream = net.add_place(MarkedPlace("stream", initial))
    b1 = net.add_place(MarkedPlace("B1"))
    b2 = net.add_place(MarkedPlace("B2"))
    delivered = net.add_place(MarkedPlace("delivered"))
    net.add_transition(Transition("R", [(stream, 1)], [b1]))
    net.add_transition(Transition("Q", [(b1, 1)], [b2]))
    net.add_transition(Transition("E", [(b2, 1)], [delivered]))
    return net


class TestPlace:
    def test_marking(self):
        p = MarkedPlace("p", 2)
        assert p.tokens() == 2

    def test_negative_marking_rejected(self):
        with pytest.raises(SchedulerError):
            MarkedPlace("p", -1)

    def test_add_remove(self):
        p = MarkedPlace("p")
        p.add(3)
        p.remove(2)
        assert p.tokens() == 1

    def test_remove_too_many(self):
        p = MarkedPlace("p", 1)
        with pytest.raises(SchedulerError):
            p.remove(2)

    def test_add_negative_rejected(self):
        with pytest.raises(SchedulerError):
            MarkedPlace("p").add(-1)


class TestTransition:
    def test_needs_input(self):
        with pytest.raises(SchedulerError):
            Transition("t", [], [MarkedPlace("p")])

    def test_threshold_validation(self):
        with pytest.raises(SchedulerError):
            Transition("t", [(MarkedPlace("p"), 0)], [])

    def test_enabled_requires_all_inputs(self):
        """Paper: when a transition has multiple inputs, all must have tuples."""
        a, b = MarkedPlace("a", 1), MarkedPlace("b", 0)
        t = Transition("t", [(a, 1), (b, 1)], [])
        assert not t.enabled()
        b.add()
        assert t.enabled()

    def test_threshold_gating(self):
        """Paper: a basket may need a minimum of n tuples before firing."""
        p = MarkedPlace("p", 2)
        t = Transition("t", [(p, 3)], [])
        assert not t.enabled()
        p.add()
        assert t.enabled()

    def test_fire_moves_tokens(self):
        a, out = MarkedPlace("a", 2), MarkedPlace("out")
        t = Transition("t", [(a, 2)], [out])
        t.fire()
        assert a.tokens() == 0 and out.tokens() == 1

    def test_fire_disabled_raises(self):
        t = Transition("t", [(MarkedPlace("a"), 1)], [])
        with pytest.raises(SchedulerError):
            t.fire()

    def test_custom_action(self):
        fired = []
        p = MarkedPlace("p", 1)
        t = Transition("t", [(p, 1)], [], action=lambda: fired.append(1))
        t.fire()
        assert fired == [1]
        # custom action does not auto-move tokens
        assert p.tokens() == 1

    def test_firing_counter(self):
        p = MarkedPlace("p", 2)
        t = Transition("t", [(p, 1)], [])
        t.fire()
        t.fire()
        assert t.firings == 2


class TestNet:
    def test_duplicate_place(self):
        net = PetriNet()
        net.add_place(MarkedPlace("p"))
        with pytest.raises(SchedulerError):
            net.add_place(MarkedPlace("p"))

    def test_duplicate_transition(self):
        net = simple_chain()
        with pytest.raises(SchedulerError):
            net.add_transition(
                Transition("R", [(net.places["stream"], 1)], [])
            )

    def test_foreign_place_rejected(self):
        net = PetriNet()
        foreign = MarkedPlace("x", 1)
        with pytest.raises(SchedulerError):
            net.add_transition(Transition("t", [(foreign, 1)], []))

    def test_chain_flows_to_completion(self):
        net = simple_chain(initial=3)
        net.run_until_quiescent()
        assert net.marking() == {
            "stream": 0, "B1": 0, "B2": 0, "delivered": 3,
        }

    def test_step_fires_each_enabled_once(self):
        net = simple_chain(initial=2)
        fired = net.step()
        assert fired == 1  # only R enabled initially
        fired = net.step()
        assert fired == 2  # R (one token left) and Q

    def test_priority_ordering(self):
        net = PetriNet()
        src = net.add_place(MarkedPlace("src", 1))
        sink = net.add_place(MarkedPlace("sink"))
        order = []
        low = Transition(
            "low", [(src, 1)], [sink],
            action=lambda: order.append("low"), priority=0,
        )
        high = Transition(
            "high", [(src, 1)], [sink],
            action=lambda: order.append("high"), priority=5,
        )
        net.add_transition(low)
        net.add_transition(high)
        net.step()
        assert order[0] == "high"

    def test_livelock_detection(self):
        net = PetriNet()
        a = net.add_place(MarkedPlace("a", 1))
        b = net.add_place(MarkedPlace("b"))
        net.add_transition(Transition("ab", [(a, 1)], [b]))
        net.add_transition(Transition("ba", [(b, 1)], [a]))
        with pytest.raises(SchedulerError):
            net.run_until_quiescent(max_steps=100)

    def test_remove_transition(self):
        net = simple_chain()
        net.remove_transition("Q")
        net.run_until_quiescent()
        assert net.marking()["B1"] == 3  # Q gone, tokens stuck in B1


class TestTokenConservation:
    @given(st.integers(0, 30))
    def test_chain_conserves_tokens(self, n):
        """Total tokens in a 1-in/1-out chain is invariant under firing."""
        net = simple_chain(initial=n)
        before = sum(net.marking().values())
        net.run_until_quiescent()
        assert sum(net.marking().values()) == before
        assert net.marking()["delivered"] == n

    @given(
        st.integers(1, 5), st.integers(0, 20),
    )
    def test_threshold_leaves_remainder(self, threshold, tokens):
        """A threshold-n transition leaves tokens % n in its input place."""
        net = PetriNet()
        src = net.add_place(MarkedPlace("src", tokens))
        sink = net.add_place(MarkedPlace("sink"))

        def consume():
            src.remove(threshold)
            sink.add(1)

        net.add_transition(
            Transition("t", [(src, threshold)], [sink], action=consume)
        )
        net.run_until_quiescent()
        assert net.marking()["src"] == tokens % threshold
        assert net.marking()["sink"] == tokens // threshold
