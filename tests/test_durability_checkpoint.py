"""Atomic checkpoints: round trip, fallback, pruning, background thread.

Write-temp-then-rename must mean a reader only ever sees whole
checkpoints: a corrupt or torn latest falls back to its predecessor, a
missing manifest degrades to a directory scan, and pruning keeps the
newest ``keep``.  The engine-level test pins the satellite-b contract:
a basket restored from a checkpoint reproduces the exact
``state_digest()`` captured inside the consistency cut.
"""

import json
import time

import numpy as np
import pytest

from repro.core.engine import DataCell
from repro.durability import (
    BasketState,
    CheckpointSnapshot,
    DurabilityConfig,
    list_checkpoints,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.kernel.types import AtomType


def _snapshot(checkpoint_id, values=(1, 2, 3)):
    n = len(values)
    return CheckpointSnapshot(
        checkpoint_id=checkpoint_id,
        wal_start_segment=4,
        clock_now=12.5,
        baskets={
            "feed": BasketState(
                columns=[
                    ("v", AtomType.INT), ("dc_time", AtomType.TIMESTAMP)
                ],
                arrays=[
                    np.array(values, dtype=np.int32),
                    np.full(n, 1.25, dtype=np.float64),
                ],
                seqs=np.arange(n, dtype=np.int64),
                next_seq=n,
                readers={"q": 1},
                total_in=n,
                total_out=0,
                total_shed=0,
                digest="abc123",
            )
        },
        factories={"q": {"bindings": [[2, 1]], "plan": None}},
        emitters={"q_emitter": 7},
    )


def test_write_and_load_round_trip(tmp_path):
    write_checkpoint(tmp_path, _snapshot(1))
    loaded = load_latest_checkpoint(tmp_path)
    assert loaded is not None
    assert loaded.checkpoint_id == 1
    assert loaded.wal_start_segment == 4
    assert loaded.clock_now == 12.5
    basket = loaded.baskets["feed"]
    assert [n for n, _ in basket.columns] == ["v", "dc_time"]
    assert list(basket.arrays[0]) == [1, 2, 3]
    assert list(basket.seqs) == [0, 1, 2]
    assert basket.next_seq == 3
    assert basket.readers == {"q": 1}
    assert basket.digest == "abc123"
    assert loaded.factories == {"q": {"bindings": [[2, 1]], "plan": None}}
    assert loaded.emitters == {"q_emitter": 7}


def test_corrupt_latest_falls_back_to_predecessor(tmp_path):
    write_checkpoint(tmp_path, _snapshot(1, values=(10,)))
    write_checkpoint(tmp_path, _snapshot(2, values=(20,)))
    (_, newest) = list_checkpoints(tmp_path)[-1]
    data = bytearray((newest / "columns.bin").read_bytes())
    data[-1] ^= 0xFF
    (newest / "columns.bin").write_bytes(bytes(data))
    loaded = load_latest_checkpoint(tmp_path)
    assert loaded.checkpoint_id == 1
    assert list(loaded.baskets["feed"].arrays[0]) == [10]


def test_missing_manifest_degrades_to_scan(tmp_path):
    write_checkpoint(tmp_path, _snapshot(1, values=(10,)))
    write_checkpoint(tmp_path, _snapshot(2, values=(20,)))
    (tmp_path / "MANIFEST.json").unlink()
    loaded = load_latest_checkpoint(tmp_path)
    assert loaded.checkpoint_id == 2


def test_stale_manifest_is_only_a_hint(tmp_path):
    write_checkpoint(tmp_path, _snapshot(1, values=(10,)))
    write_checkpoint(tmp_path, _snapshot(2, values=(20,)))
    (tmp_path / "MANIFEST.json").write_text(
        json.dumps({"latest": "ckpt-00000099"})
    )
    loaded = load_latest_checkpoint(tmp_path)
    assert loaded.checkpoint_id == 2


def test_keep_prunes_oldest(tmp_path):
    for i in (1, 2, 3):
        write_checkpoint(tmp_path, _snapshot(i), keep=2)
    assert [cid for cid, _ in list_checkpoints(tmp_path)] == [2, 3]


def test_empty_directory_loads_none(tmp_path):
    assert load_latest_checkpoint(tmp_path) is None


# ----------------------------------------------------------------------
# engine level
# ----------------------------------------------------------------------
def test_restored_basket_reproduces_checkpointed_digest(tmp_path):
    """Satellite-b contract: digest(post-recovery) == digest(in-cut)."""
    cell = DataCell(durability=DurabilityConfig(directory=tmp_path))
    cell.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.DBL)])
    cell.submit_continuous(
        "select x.a from [select * from feed where feed.a > 0] as x",
        name="q",
    )
    cell.basket("feed").insert_rows([(1, 0.5), (-2, 1.5), (3, 2.5)])
    cell.run_until_quiescent()
    cell.basket("feed").insert_rows([(4, 3.5)])  # in-flight at the cut
    cell.checkpoint()
    digests = {
        b.name: b.state_digest()
        for b in cell.catalog.baskets()
        if hasattr(b, "state_digest")
    }
    cell.durability.abandon()

    cell2 = DataCell(durability=DurabilityConfig(directory=tmp_path))
    cell2.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.DBL)])
    cell2.submit_continuous(
        "select x.a from [select * from feed where feed.a > 0] as x",
        name="q",
    )
    cell2.recover()
    for basket in cell2.catalog.baskets():
        if hasattr(basket, "state_digest"):
            assert basket.state_digest() == digests[basket.name], basket.name
    cell2.durability.close()


def test_background_checkpointer_thread(tmp_path):
    cell = DataCell(
        durability=DurabilityConfig(
            directory=tmp_path, checkpoint_interval=0.02
        )
    )
    cell.create_basket("feed", [("a", AtomType.INT)])
    cell.basket("feed").insert_rows([(1,), (2,)])
    cell.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if cell.durability.stats()["checkpoints"] >= 2:
            break
        time.sleep(0.01)
    assert cell.stop() == []
    assert cell.durability.stats()["checkpoints"] >= 2
    assert load_latest_checkpoint(tmp_path / "checkpoints") is not None
    cell.durability.close()


def test_checkpoint_requires_durability():
    cell = DataCell()
    from repro.errors import DataCellError

    with pytest.raises(DataCellError):
        cell.checkpoint()
    with pytest.raises(DataCellError):
        cell.recover()
