"""Continuous EXPLAIN ANALYZE: plan-node attribution of opcode timings."""

import re

import pytest

from repro import DataCell
from repro.sql.compiler import compile_continuous
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_select

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell():
    cell = DataCell()
    cell.execute("create basket sensors (sensor int, temp double)")
    query = cell.submit_continuous(CQ, name="hot")
    return cell, query


def drive(cell, batches=3):
    for i in range(batches):
        cell.insert("sensors", [(i, 45.0), (i + 100, 10.0)])
        cell.run_until_quiescent()


class TestAttribution:
    def test_95_percent_of_interpreter_time_attributed(self):
        cell, query = build_cell()
        drive(cell, batches=5)
        program = query.program()
        attributed = sum(
            slot[1]
            for node, slot in program.node_stats.items()
            if node is not None
        )
        measured = sum(
            prof["seconds"] for prof in cell.interpreter.profile().values()
        )
        assert measured > 0
        assert attributed / measured >= 0.95

    def test_calls_scale_with_activations(self):
        cell, query = build_cell()
        drive(cell, batches=4)
        program = query.program()
        scan = next(
            node_id for node_id, node in program.nodes.items()
            if node.label == "basket sensors"
        )
        calls = program.node_stats[scan][0]
        assert calls > 0
        assert calls % 4 == 0  # same instructions, once per activation

    def test_rows_accumulate_across_activations(self):
        cell, query = build_cell()
        drive(cell, batches=3)
        program = query.program()
        result = next(
            node_id for node_id, node in program.nodes.items()
            if node.label == "result"
        )
        # one qualifying tuple per batch, summed over activations
        assert program.node_stats[result][2] == 3

    def test_stats_survive_the_optimizer(self):
        # the submit path optimizes (fold/CSE/DCE rebuild instructions);
        # every surviving non-glue instruction must keep its node tag
        cell, query = build_cell()
        program = query.program()
        tagged = [ins for ins in program.instructions if ins.node is not None]
        assert len(tagged) >= len(program.instructions) - 2
        for ins in tagged:
            assert ins.node in program.nodes


class TestRendering:
    def test_tree_annotated_with_time_calls_rows(self):
        cell, query = build_cell()
        drive(cell, batches=2)
        text = cell.explain("hot")
        assert text.startswith("continuous query hot")
        assert "continuous select" in text
        assert "basket sensors" in text
        assert "result" in text
        stats = re.findall(
            r"\[time=([\d.]+) ms, calls=(\d+), rows=(\d+)\]", text
        )
        assert stats  # at least one operator carries measurements
        assert any(int(calls) > 0 for _, calls, _ in stats)
        assert "total analyzed:" in text

    def test_tree_structure_indents_children(self):
        cell, query = build_cell()
        text = cell.explain("hot")
        lines = text.splitlines()
        select_line = next(
            line for line in lines if "continuous select" in line
        )
        scan_line = next(
            line for line in lines if "basket sensors" in line
        )
        indent = len(select_line) - len(select_line.lstrip())
        scan_indent = len(scan_line) - len(scan_line.lstrip())
        assert scan_indent > indent

    def test_never_executed_marker_before_first_batch(self):
        cell, query = build_cell()
        text = cell.explain("hot")
        assert "(never executed)" in text
        assert "[time=" not in text

    def test_explain_by_name_vs_sql(self):
        cell, query = build_cell()
        drive(cell, batches=1)
        by_name = cell.explain("hot")
        assert "[time=" in by_name
        # unknown name falls through to SQL compilation and raises there
        by_sql = cell.explain("select * from sensors")
        assert "algebra" in by_sql or "resultset" in by_sql

    def test_hand_built_plan_explains_gracefully(self):
        from repro.core.factory import CallablePlan
        from repro.kernel.types import AtomType

        cell = DataCell()
        cell.execute("create basket src (v int)")
        query = cell.submit_plan(
            "w", CallablePlan(lambda s: None, default_output="w_out"),
            ["src"], [("v", AtomType.INT)],
        )
        text = query.explain_analyze()
        assert "hand-built plan" in text
        assert query.program() is None


class TestCompilerNodeTree:
    def test_fresh_program_has_node_tree(self):
        cell, _ = build_cell()
        stmt = parse_select(CQ)
        compiled = compile_continuous(cell.catalog, stmt)
        program = compiled.program
        assert program.plan_root is not None
        labels = {node.label for node in program.nodes.values()}
        assert {"continuous select", "from", "basket sensors",
                "project", "result"} <= labels
        # every emitted instruction is tagged with a node in the tree
        for ins in program.instructions:
            assert ins.node is not None
            assert ins.node in program.nodes

    def test_optimizer_clone_keeps_tree(self):
        cell, _ = build_cell()
        stmt = parse_select(CQ)
        compiled = compile_continuous(cell.catalog, stmt)
        before = dict(compiled.program.nodes)
        optimized, _ = optimize(
            compiled.program,
            protected=[b.consumed_var for b in compiled.basket_inputs],
        )
        assert optimized.plan_root == compiled.program.plan_root
        assert set(optimized.nodes) == set(before)

    def test_unbalanced_node_scope_raises(self):
        from repro.kernel.mal import MalError, Program

        program = Program("p")
        with pytest.raises(MalError):
            program.end_node()
