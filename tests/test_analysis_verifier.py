"""Static plan verifier: corpus, planted-bad programs, surfaced bugs."""

import numpy as np
import pytest

from repro.analysis.corpus import (
    GOOD_QUERIES,
    planted_bad_cases,
    run_good_corpus,
)
from repro.analysis.diagnostics import PlanVerificationError
from repro.analysis.signatures import (
    AbstractValue,
    Kind,
    registry_coverage,
)
from repro.analysis.verifier import verify_continuous, verify_program
from repro.core.engine import DataCell
from repro.kernel.aggregate import grouped_aggregate
from repro.kernel.bat import BAT, bat_from_values
from repro.kernel.calc import calc_neg
from repro.kernel.mal import Instr, Var
from repro.kernel.types import AtomType
from repro.sql.compiler import compile_continuous
from repro.sql.optimizer import eliminate_dead_code
from repro.sql.parser import parse_select


def _cell():
    cell = DataCell()
    cell.create_basket(
        "trades",
        [
            ("price", AtomType.DBL),
            ("qty", AtomType.INT),
            ("sym", AtomType.STR),
        ],
    )
    return cell


class TestSignatureCatalog:
    def test_signatures_cover_registry_exactly(self):
        unsigned, unregistered = registry_coverage()
        assert unsigned == (), f"registered opcodes missing signatures: {unsigned}"
        assert unregistered == (), (
            f"signed opcodes not in the interpreter registry "
            f"(would fail mid-firing): {unregistered}"
        )


class TestGoodCorpus:
    def test_zero_false_positives(self):
        results = run_good_corpus()
        rejected = [r for r in results if not r["registered"]]
        assert rejected == []

    def test_corpus_covers_both_execution_modes(self):
        modes = {execution for _, _, execution in GOOD_QUERIES}
        assert modes == {"reeval", "incremental"}


class TestPlantedBad:
    @pytest.mark.parametrize(
        "name", sorted(planted_bad_cases())
    )
    def test_rejected_with_expected_rule(self, name):
        builder, expected_rule = planted_bad_cases()[name]
        diagnostics = builder()
        errors = [d for d in diagnostics if d.is_error]
        assert errors, f"{name}: no error diagnostics at all"
        assert any(d.rule == expected_rule for d in errors), (
            f"{name}: expected [{expected_rule}] among "
            f"{[d.rule for d in errors]}"
        )

    def test_registration_rejects_with_anchored_diagnostic(self):
        """A bad plan fails at submit time, anchored to a plan node."""
        cell = _cell()
        compiled = compile_continuous(
            cell.catalog,
            parse_select("select x.sym from [select * from trades] as x"),
        )
        # sabotage the compiled plan: reference a variable that does not
        # exist (the classic mid-firing KeyError)
        compiled.program.instructions.insert(
            0,
            Instr(
                ("boom",), "algebra", "densecands", (Var("ghost"),), None
            ),
        )
        compiled.program.instructions.insert(
            1,
            Instr(
                ("boom2",), "algebra", "projection",
                (Var("boom"), Var("ghost")), None,
            ),
        )
        diags = verify_continuous(compiled, cell.catalog)
        errors = [d for d in diags if d.is_error]
        assert any(d.rule == "undefined-variable" for d in errors)
        # instruction anchor survives into the rendered message
        rendered = "\n".join(d.render() for d in errors)
        assert "ghost" in rendered

    def test_error_message_carries_node_path(self):
        """Diagnostics on compiled instructions name the plan node."""
        cell = _cell()
        compiled = compile_continuous(
            cell.catalog,
            parse_select(
                "select x.sym from [select * from trades] as x "
                "where x.price > 1.0"
            ),
        )
        # retype an input so the comparison inside `where` clashes
        diags = verify_program(
            compiled.program,
            catalog=cell.catalog,
            input_values={
                "x.price": AbstractValue(kind=Kind.BAT, atom=AtomType.STR)
            },
        )
        errors = [d for d in diags if d.is_error]
        assert errors
        assert any(d.node_path and "where" in d.node_path for d in errors)


class TestDeadCodeCrossCheck:
    def test_dead_warnings_match_optimizer_dce(self):
        """The verifier's liveness and the optimizer's DCE agree."""
        cell = _cell()
        for _, sql, execution in GOOD_QUERIES:
            if execution != "reeval" or "refs" in sql:
                continue
            compiled = compile_continuous(cell.catalog, parse_select(sql))
            protected = [b.consumed_var for b in compiled.basket_inputs]
            diags = verify_program(
                compiled.program, protected=protected, check_dead=True
            )
            warned = sum(
                1 for d in diags if d.rule == "dead-instruction"
            )
            _, removed = eliminate_dead_code(
                compiled.program, protected=protected
            )
            assert warned == removed, sql

    def test_no_dead_warnings_after_optimize(self):
        cell = _cell()
        q = cell.submit_continuous(
            "select x.sym from [select * from trades] as x "
            "where x.price > 2.0"
        )
        # the registered (optimized) program is warning-free
        factory = next(
            t for t in cell.scheduler.transitions() if t.name == q.name
        )
        program = factory.plan.compiled.program
        diags = verify_program(
            program,
            catalog=cell.catalog,
            protected=[
                b.consumed_var
                for b in factory.plan.compiled.basket_inputs
            ],
        )
        assert [d for d in diags if d.rule == "dead-instruction"] == []
        cell.stop()


class TestEmitterBoundary:
    def test_registration_fails_fast_on_type_clash(self):
        """Declared-vs-computed output atom mismatch rejects at submit."""
        cell = _cell()
        compiled = compile_continuous(
            cell.catalog,
            parse_select(
                "select x.qty from [select * from trades] as x"
            ),
        )
        compiled.output_atoms[0] = AtomType.STR  # sabotage the contract
        diags = verify_continuous(compiled, cell.catalog)
        errors = [d for d in diags if d.is_error]
        assert any(d.rule == "emitter-boundary" for d in errors)

    def test_engine_raises_plan_verification_error(self, monkeypatch):
        cell = _cell()
        import repro.core.engine as engine_mod

        real = engine_mod.compile_continuous

        def sabotage(catalog, stmt):
            compiled = real(catalog, stmt)
            # miscompile the interface: declared output atom no longer
            # matches what the plan computes (STR column declared INT)
            compiled.output_atoms[0] = AtomType.INT
            return compiled

        monkeypatch.setattr(engine_mod, "compile_continuous", sabotage)
        with pytest.raises(PlanVerificationError) as excinfo:
            cell.submit_continuous(
                "select x.sym from [select * from trades] as x"
            )
        assert "emitter-boundary" in str(excinfo.value)
        cell.stop()


class TestSurfacedBugs:
    """Regression tests for real bugs the verifier's rules exposed."""

    def test_grouped_min_max_preserve_int_atom(self):
        """grouped min/max over INT must stay INT (was widened to LNG)."""
        values = bat_from_values(AtomType.INT, [5, 3, 9, 1])
        groups = BAT(AtomType.OID)
        groups.append_array(np.array([0, 0, 1, 1], dtype=np.int64))
        out = grouped_aggregate("min", values, groups, 2)
        assert out.atom is AtomType.INT
        assert list(out.tail) == [3, 1]
        out = grouped_aggregate("max", values, groups, 2)
        assert out.atom is AtomType.INT
        assert list(out.tail) == [5, 9]

    def test_grouped_min_preserves_timestamp_atom(self):
        values = bat_from_values(AtomType.TIMESTAMP, [5.0, 3.0, 9.0])
        groups = BAT(AtomType.OID)
        groups.append_array(np.array([0, 0, 0], dtype=np.int64))
        out = grouped_aggregate("min", values, groups, 1)
        assert out.atom is AtomType.TIMESTAMP

    def test_grouped_sum_still_widens_to_lng(self):
        values = bat_from_values(AtomType.INT, [5, 3])
        groups = BAT(AtomType.OID)
        groups.append_array(np.array([0, 0], dtype=np.int64))
        out = grouped_aggregate("sum", values, groups, 1)
        assert out.atom is AtomType.LNG
        assert list(out.tail) == [8]

    def test_continuous_group_by_min_int_fires(self):
        """End to end: the shape that used to die mid-firing."""
        cell = _cell()
        q = cell.submit_continuous(
            "select x.sym, min(x.qty), max(x.qty) from "
            "[select * from trades] as x group by x.sym"
        )
        cell.insert("trades", [(1.0, 7, "a"), (2.0, 3, "a"), (3.0, 9, "b")])
        cell.run_until_quiescent()
        rows = {r[0]: r[1:] for r in q.fetch()}
        assert rows["a"] == (3, 7)
        assert rows["b"] == (9, 9)
        cell.stop()

    def test_unary_neg_preserves_int_atom(self):
        """calc_neg must not widen INT to LNG via its zero constant."""
        values = bat_from_values(AtomType.INT, [5, -3])
        out = calc_neg(values)
        assert out.atom is AtomType.INT
        assert list(out.tail) == [-5, 3]

    def test_continuous_unary_minus_fires(self):
        cell = _cell()
        q = cell.submit_continuous(
            "select x.sym, -x.qty from [select * from trades] as x"
        )
        cell.insert("trades", [(1.0, 7, "a")])
        cell.run_until_quiescent()
        assert q.fetch() == [("a", -7)]
        cell.stop()
