"""Unit tests for MAL programs, the interpreter, and Algorithm 1 fidelity."""

import pytest

from repro.errors import MalError
from repro.kernel.bat import bat_from_values
from repro.kernel.catalog import Catalog
from repro.kernel.interpreter import MalInterpreter
from repro.kernel.mal import Const, Instr, Program, ResultSet, Var
from repro.kernel.types import AtomType


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.create_table(
        "readings", [("sensor", AtomType.INT), ("temp", AtomType.DBL)]
    )
    t.append_rows([(1, 10.0), (2, 35.0), (3, 40.0), (1, 5.0)])
    return cat


class TestProgram:
    def test_emit_allocates_fresh_names(self):
        p = Program()
        a = p.emit("language", "pass", [Const(1)])
        b = p.emit("language", "pass", [Const(2)])
        assert a != b
        assert len(p) == 2

    def test_render(self):
        p = Program(name="demo", inputs=["x"])
        p.emit("language", "pass", [Var("x")], results=["y"])
        p.output = "y"
        text = p.render()
        assert "function demo(x):" in text
        assert "y := language.pass(x)" in text
        assert "return y;" in text

    def test_validate_def_before_use(self):
        p = Program()
        p.emit("language", "pass", [Var("ghost")])
        with pytest.raises(MalError):
            p.validate()

    def test_validate_output_defined(self):
        p = Program(output="never")
        with pytest.raises(MalError):
            p.validate()

    def test_validate_ok(self):
        p = Program(inputs=["x"])
        p.output = p.emit("language", "pass", [Var("x")])
        p.validate()


class TestResultSet:
    def test_rows(self):
        rs = ResultSet(
            ["a", "b"],
            [
                bat_from_values(AtomType.INT, [1, 2]),
                bat_from_values(AtomType.STR, ["x", None]),
            ],
        )
        assert rs.rows() == [(1, "x"), (2, None)]
        assert rs.count == 2

    def test_column_lookup(self):
        rs = ResultSet(["a"], [bat_from_values(AtomType.INT, [1])])
        assert rs.column("a").python_list() == [1]
        with pytest.raises(MalError):
            rs.column("zz")

    def test_arity_mismatch(self):
        with pytest.raises(MalError):
            ResultSet(["a", "b"], [bat_from_values(AtomType.INT, [1])])

    def test_length_mismatch(self):
        with pytest.raises(MalError):
            ResultSet(
                ["a", "b"],
                [
                    bat_from_values(AtomType.INT, [1]),
                    bat_from_values(AtomType.INT, [1, 2]),
                ],
            )


class TestInterpreter:
    def test_select_project_pipeline(self, catalog):
        """The classic plan: bind, select, project, result."""
        p = Program(name="hot")
        temp = p.emit("sql", "bind", [Const("readings"), Const("temp")])
        cands = p.emit(
            "algebra",
            "thetaselect",
            [Var(temp), Const(None), Const(">"), Const(30.0)],
        )
        sensor = p.emit("sql", "bind", [Const("readings"), Const("sensor")])
        out_sensor = p.emit("algebra", "projection", [Var(cands), Var(sensor)])
        out_temp = p.emit("algebra", "projection", [Var(cands), Var(temp)])
        p.output = p.emit(
            "sql",
            "resultset",
            [Const(("sensor", "temp")), Var(out_sensor), Var(out_temp)],
        )
        p.validate()
        result = MalInterpreter(catalog).run(p)
        assert result.rows() == [(2, 35.0), (3, 40.0)]

    def test_missing_input_raises(self, catalog):
        p = Program(inputs=["needed"])
        with pytest.raises(MalError):
            MalInterpreter(catalog).execute(p)

    def test_unknown_primitive(self, catalog):
        p = Program()
        p.instructions.append(Instr(("x",), "nosuch", "fn", ()))
        with pytest.raises(MalError):
            MalInterpreter(catalog).execute(p)

    def test_undefined_variable(self, catalog):
        p = Program()
        p.instructions.append(
            Instr(("x",), "language", "pass", (Var("ghost"),))
        )
        with pytest.raises(MalError):
            MalInterpreter(catalog).execute(p)

    def test_primitive_failure_wrapped(self, catalog):
        p = Program()
        p.emit("sql", "bind", [Const("readings"), Const("nope")])
        with pytest.raises(MalError):
            MalInterpreter(catalog).execute(p)

    def test_multi_result_instruction(self, catalog):
        p = Program()
        col = p.emit("sql", "bind", [Const("readings"), Const("sensor")])
        p.emit("group", "group", [Var(col)], results=("grp", "ext", "n"))
        env = MalInterpreter(catalog).execute(p)
        assert env["n"] == 3

    def test_inputs_flow_through(self, catalog):
        p = Program(inputs=["x"])
        p.output = p.emit("language", "pass", [Var("x")])
        assert MalInterpreter(catalog).run(p, {"x": 42}) == 42

    def test_grouped_aggregate_plan(self, catalog):
        p = Program()
        sensor = p.emit("sql", "bind", [Const("readings"), Const("sensor")])
        temp = p.emit("sql", "bind", [Const("readings"), Const("temp")])
        grp, ext, n = p.emit(
            "group", "group", [Var(sensor)], results=("grp", "ext", "n")
        )
        sums = p.emit("aggr", "subsum", [Var(temp), Var(grp), Var(n)])
        keys = p.emit("algebra", "projection", [Var(ext), Var(sensor)])
        p.output = p.emit(
            "sql", "resultset", [Const(("sensor", "total")), Var(keys), Var(sums)]
        )
        # extents are candidate-order positions; translate via dense cands
        result = MalInterpreter(catalog).run(p)
        rows = dict(result.rows())
        assert rows == {1: 15.0, 2: 35.0, 3: 40.0}

    def test_batcalc_plan(self, catalog):
        p = Program()
        temp = p.emit("sql", "bind", [Const("readings"), Const("temp")])
        doubled = p.emit("batcalc", "*", [Var(temp), Const(2.0)])
        hot = p.emit("batcalc", ">", [Var(doubled), Const(50.0)])
        cands = p.emit("algebra", "mask2cand", [Var(hot)])
        p.output = p.emit("algebra", "projection", [Var(cands), Var(temp)])
        out = MalInterpreter(catalog).run(p)
        assert out.python_list() == [35.0, 40.0]


class TestAlgorithmOne:
    """Algorithm 1 from the paper, executed through MAL basket primitives."""

    def test_factory_body(self):
        cat = Catalog()
        inp = cat.create_table("x", [("v", AtomType.INT)], is_basket=True)
        out = cat.create_table("y", [("v", AtomType.INT)], is_basket=True)
        inp.append_rows([(5,), (15,), (25,)])

        p = Program(name="simple_select_factory")
        p.emit("basket", "bind", [Const("x")], results=["input"])
        p.emit("basket", "bind", [Const("y")], results=["output"])
        p.emit("basket", "lock", [Var("input")], results=["li"])
        p.emit("basket", "lock", [Var("output")], results=["lo"])
        col = p.emit("basket", "snapshot", [Var("input"), Const("v")])
        cands = p.emit(
            "algebra",
            "select",
            [Var(col), Const(None), Const(10), Const(20), Const(True),
             Const(True), Const(False)],
        )
        vals = p.emit("algebra", "projection", [Var(cands), Var(col)])
        res = p.emit("sql", "resultset", [Const(("v",)), Var(vals)])
        p.emit("basket", "empty", [Var("input")])
        p.emit("basket", "append", [Var("output"), Var(res)])
        p.emit("basket", "unlock", [Var("input")])
        p.emit("basket", "unlock", [Var("output")])
        p.validate()

        MalInterpreter(cat).execute(p)
        assert inp.count == 0, "input basket emptied after consumption"
        assert out.rows() == [(15,)], "qualifying tuple moved to output"
