"""Direct unit tests for the text dashboard renderer."""

from repro.obs.dashboard import render_dashboard
from repro.obs.tracing import TraceLog


def _stats(
    transitions=None, baskets=None, queries=None, mal=None,
    iterations=3, firings=7,
):
    return {
        "scheduler": {
            "iterations": iterations,
            "firings": firings,
            "transitions": transitions or {},
        },
        "baskets": baskets or {},
        "queries": queries or {},
        "mal": mal or {},
    }


HIST = {"count": 2, "sum": 0.01, "min": 0.004, "max": 0.006,
        "p50": 0.005, "p95": 0.006, "p99": 0.006}


class TestSectionPresence:
    def test_all_sections_rendered(self):
        text = render_dashboard(_stats(
            transitions={"q1": {
                "firings": 2, "idle_polls": 1, "activation_seconds": HIST,
            }},
            baskets={"sensors": {
                "depth": 1, "high_water": 4, "inserted": 5,
                "consumed": 4, "shed": 0,
            }},
            queries={"q1": {"delivered": 4, "latency": HIST}},
            mal={"algebra.thetaselect": {"calls": 2, "seconds": 0.003}},
        ))
        assert "scheduler: iterations=3 firings=7" in text
        assert "== Transitions ==" in text
        assert "== Baskets ==" in text
        assert "== Continuous queries (insert → emit latency) ==" in text
        assert "== MAL opcodes (top 15 by cumulative time) ==" in text

    def test_empty_sections_omitted(self):
        text = render_dashboard(_stats())
        assert "scheduler:" in text
        assert "Transitions" not in text
        assert "Baskets" not in text
        assert "MAL opcodes" not in text

    def test_trace_section_only_when_given(self):
        trace = TraceLog()
        trace.record("fire", "q1", tuples=3)
        without = render_dashboard(_stats())
        with_trace = render_dashboard(_stats(), trace=trace)
        assert "Trace" not in without
        assert "== Trace (last 10 of 1 buffered) ==" in with_trace
        assert "fire" in with_trace

    def test_empty_trace_omitted(self):
        text = render_dashboard(_stats(), trace=TraceLog())
        assert "Trace" not in text


class TestAlignment:
    def test_long_query_name_keeps_columns_aligned(self):
        long_name = "very_long_continuous_query_name_for_alignment"
        text = render_dashboard(_stats(
            queries={
                "q1": {"delivered": 4, "latency": HIST},
                long_name: {"delivered": 1, "latency": HIST},
            },
        ))
        lines = text.splitlines()
        header_idx = next(
            i for i, line in enumerate(lines) if line.startswith("query")
        )
        header = lines[header_idx]
        rule = lines[header_idx + 1]
        data = lines[header_idx + 2 : header_idx + 4]
        assert set(rule) == {"-"} and len(rule) == len(header)
        # the 'delivered' column must start at the same offset in the
        # header and in every data row, long name notwithstanding
        col = header.index("delivered")
        assert col > len(long_name)
        for row in data:
            value = row[col:].split()[0]
            assert value in {"4", "1"}

    def test_long_basket_name_widens_column(self):
        text = render_dashboard(_stats(
            baskets={
                "b" * 40: {"depth": 1, "high_water": 1, "inserted": 1,
                           "consumed": 0, "shed": 0},
            },
        ))
        header = next(
            line for line in text.splitlines() if line.startswith("basket")
        )
        assert header.index("depth") > 40


class TestEmptyRegistry:
    def test_all_empty_stats_still_renders(self):
        text = render_dashboard({
            "scheduler": {}, "baskets": {}, "queries": {}, "mal": {},
        })
        assert text == "scheduler: iterations=0 firings=0\n"

    def test_missing_sections_tolerated(self):
        # a partial stats dict (no 'mal', no 'queries') must not raise
        text = render_dashboard({"scheduler": {"iterations": 1}})
        assert "iterations=1" in text

    def test_none_valued_fields_render_as_zero(self):
        text = render_dashboard(_stats(
            baskets={"b": {"depth": None, "high_water": None,
                           "inserted": None, "consumed": None, "shed": None}},
        ))
        row = next(
            line for line in text.splitlines() if line.startswith("b ")
        )
        assert row.split()[1:] == ["0", "0", "0", "0", "0"]

class TestResourcesSection:
    def test_ranked_table_and_budgets(self):
        stats = _stats()
        stats["resources"] = {
            "queries": {
                "hot": {
                    "tenant": "team-a", "cpu_seconds": 0.02,
                    "plan_cpu_seconds": 0.01, "opcode_cpu_seconds": 0.009,
                    "memory_bytes": 4096, "queue_wait_seconds": 0.5,
                    "queue_wait_tuples": 10, "rows_in": 100, "rows_out": 40,
                },
                "cold": {
                    "tenant": "default", "cpu_seconds": 0.0,
                    "plan_cpu_seconds": 0.0, "opcode_cpu_seconds": 0.0,
                    "memory_bytes": 0, "queue_wait_seconds": 0.0,
                    "queue_wait_tuples": 0, "rows_in": 0, "rows_out": 0,
                },
            },
            "engine": {"memory_bytes": 8192, "accounts": 2},
            "budgets": {"cap": {"scope": "query:hot", "breaches": 3}},
        }
        text = render_dashboard(stats)
        assert "Top queries by CPU (engine memory=8192 B)" in text
        assert "== Resource budgets ==" in text
        assert "query:hot" in text
        # busy query ranks above the idle one
        assert text.index("hot") < text.index("cold")

    def test_section_omitted_without_accounting(self):
        assert "Top queries by CPU" not in render_dashboard(_stats())

    def test_zero_firings_account_renders(self):
        stats = _stats()
        stats["resources"] = {
            "queries": {
                "cold": {
                    "tenant": "default", "cpu_seconds": 0.0,
                    "plan_cpu_seconds": 0.0, "opcode_cpu_seconds": 0.0,
                    "memory_bytes": 0, "queue_wait_seconds": 0.0,
                    "queue_wait_tuples": 0, "rows_in": 0, "rows_out": 0,
                },
            },
            "engine": {"memory_bytes": 0, "accounts": 1},
            "budgets": {},
        }
        text = render_dashboard(stats)
        assert "cold" in text
        assert "Resource budgets" not in text
