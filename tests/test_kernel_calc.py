"""Unit and property tests for batcalc arithmetic/comparison/boolean ops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.bat import bat_from_values
from repro.kernel.calc import (
    calc_and,
    calc_binary,
    calc_compare,
    calc_ifthenelse,
    calc_isnil,
    calc_neg,
    calc_not,
    calc_or,
    const_bat,
)
from repro.kernel.types import AtomType


def ints(values, hseqbase=0):
    return bat_from_values(AtomType.LNG, values, hseqbase=hseqbase)


def bools(values):
    return bat_from_values(AtomType.BOOL, values)


class TestArithmetic:
    def test_add_bats(self):
        out = calc_binary("+", ints([1, 2]), ints([10, 20]))
        assert out.python_list() == [11, 22]

    def test_add_scalar(self):
        out = calc_binary("+", ints([1, 2]), 5)
        assert out.python_list() == [6, 7]

    def test_scalar_on_left(self):
        out = calc_binary("-", 10, ints([1, 2]))
        assert out.python_list() == [9, 8]

    def test_mul(self):
        assert calc_binary("*", ints([3]), ints([4])).python_list() == [12]

    def test_div_always_dbl(self):
        out = calc_binary("/", ints([7]), ints([2]))
        assert out.atom is AtomType.DBL
        assert out.python_list() == [3.5]

    def test_div_by_zero_is_null(self):
        out = calc_binary("/", ints([1, 2]), ints([0, 1]))
        assert out.python_list() == [None, 2.0]

    def test_mod(self):
        assert calc_binary("%", ints([7]), ints([3])).python_list() == [1]

    def test_mod_by_zero_is_null(self):
        assert calc_binary("%", ints([7]), ints([0])).python_list() == [None]

    def test_null_propagates(self):
        out = calc_binary("+", ints([1, None]), ints([1, 1]))
        assert out.python_list() == [2, None]

    def test_int_plus_dbl_widens(self):
        d = bat_from_values(AtomType.DBL, [0.5])
        out = calc_binary("+", ints([1]), d)
        assert out.atom is AtomType.DBL
        assert out.python_list() == [1.5]

    def test_string_concat(self):
        a = bat_from_values(AtomType.STR, ["foo", None])
        b = bat_from_values(AtomType.STR, ["bar", "x"])
        assert calc_binary("+", a, b).python_list() == ["foobar", None]

    def test_arithmetic_on_str_raises(self):
        a = bat_from_values(AtomType.STR, ["x"])
        with pytest.raises((TypeMismatchError, KernelError)):
            calc_binary("*", a, a)

    def test_unknown_op_raises(self):
        with pytest.raises(KernelError):
            calc_binary("^", ints([1]), ints([1]))

    def test_no_bat_operand_raises(self):
        with pytest.raises(KernelError):
            calc_binary("+", 1, 2)

    def test_neg(self):
        assert calc_neg(ints([1, -2, None])).python_list() == [-1, 2, None]

    def test_alignment_preserved(self):
        a = ints([1, 2], hseqbase=50)
        out = calc_binary("+", a, 1)
        assert out.hseqbase == 50


class TestComparison:
    def test_compare_bats(self):
        out = calc_compare("<", ints([1, 5]), ints([3, 3]))
        assert out.python_list() == [True, False]

    def test_compare_scalar(self):
        out = calc_compare(">=", ints([1, 2, 3]), 2)
        assert out.python_list() == [False, True, True]

    def test_null_compare_is_null(self):
        out = calc_compare("==", ints([None, 1]), 1)
        assert out.python_list() == [None, True]

    def test_string_compare(self):
        a = bat_from_values(AtomType.STR, ["a", "b", None])
        out = calc_compare("==", a, "b")
        assert out.python_list() == [False, True, None]

    def test_str_vs_int_raises(self):
        a = bat_from_values(AtomType.STR, ["a"])
        with pytest.raises((TypeMismatchError, KernelError)):
            calc_compare("==", a, 1)


class TestBoolean:
    def test_and_truth_table(self):
        left = bools([1, 1, 1, 0, 0, 0, None, None, None])
        right = bools([1, 0, None, 1, 0, None, 1, 0, None])
        out = calc_and(left, right)
        assert out.python_list() == [
            True, False, None, False, False, False, None, False, None,
        ]

    def test_or_truth_table(self):
        left = bools([1, 1, 1, 0, 0, 0, None, None, None])
        right = bools([1, 0, None, 1, 0, None, 1, 0, None])
        out = calc_or(left, right)
        assert out.python_list() == [
            True, True, True, True, False, None, True, None, None,
        ]

    def test_not(self):
        out = calc_not(bools([1, 0, None]))
        assert out.python_list() == [False, True, None]

    def test_not_requires_bool(self):
        with pytest.raises(TypeMismatchError):
            calc_not(ints([1]))

    def test_and_with_scalar(self):
        out = calc_and(bools([1, 0]), True)
        assert out.python_list() == [True, False]

    def test_isnil(self):
        out = calc_isnil(ints([1, None]))
        assert out.python_list() == [False, True]


class TestIfThenElse:
    def test_basic(self):
        cond = bools([1, 0, None])
        out = calc_ifthenelse(cond, ints([10, 10, 10]), ints([20, 20, 20]))
        assert out.python_list() == [10, 20, 20]

    def test_scalar_branches(self):
        cond = bools([1, 0])
        out = calc_ifthenelse(cond, 1, 2)
        assert out.python_list() == [1, 2]

    def test_requires_bool_condition(self):
        with pytest.raises(TypeMismatchError):
            calc_ifthenelse(ints([1]), 1, 2)

    def test_str_branches(self):
        cond = bools([1, 0])
        a = bat_from_values(AtomType.STR, ["hi", "hi"])
        b = bat_from_values(AtomType.STR, ["lo", "lo"])
        assert calc_ifthenelse(cond, a, b).python_list() == ["hi", "lo"]


class TestConstBat:
    def test_numeric(self):
        like = ints([1, 2, 3])
        assert const_bat(7, like).python_list() == [7, 7, 7]

    def test_string(self):
        like = ints([1, 2])
        assert const_bat("x", like).python_list() == ["x", "x"]

    def test_alignment(self):
        like = ints([1], hseqbase=9)
        assert const_bat(0, like).hseqbase == 9


class TestProperties:
    @given(
        st.lists(st.one_of(st.integers(-10**6, 10**6), st.none()), max_size=100),
        st.integers(-1000, 1000),
        st.sampled_from(["+", "-", "*"]),
    )
    def test_arithmetic_matches_python(self, values, scalar, op):
        import operator as _op

        fns = {"+": _op.add, "-": _op.sub, "*": _op.mul}
        out = calc_binary(op, ints(values), scalar)
        expect = [None if v is None else fns[op](v, scalar) for v in values]
        assert out.python_list() == expect

    @given(st.lists(st.sampled_from([True, False, None]), max_size=60))
    def test_demorgan(self, raw):
        left = bools(raw)
        right = bools(list(reversed(raw)))
        lhs = calc_not(calc_and(left, right))
        rhs = calc_or(calc_not(left), calc_not(right))
        assert lhs.python_list() == rhs.python_list()

    @given(st.lists(st.sampled_from([True, False, None]), max_size=60))
    def test_double_negation(self, raw):
        b = bools(raw)
        assert calc_not(calc_not(b)).python_list() == b.python_list()
