"""Unit and property tests for join, group, aggregate and sort primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.aggregate import (
    AggregateState,
    grouped_aggregate,
    scalar_aggregate,
)
from repro.kernel.bat import bat_from_values
from repro.kernel.group import distinct_positions, group, subgroup
from repro.kernel.join import (
    cross_positions,
    hash_join,
    left_outer_join,
    projection,
    theta_join,
)
from repro.kernel.sort import order, refine, topn
from repro.kernel.types import AtomType


def ints(values, hseqbase=0):
    return bat_from_values(AtomType.LNG, values, hseqbase=hseqbase)


def strs(values):
    return bat_from_values(AtomType.STR, values)


class TestProjection:
    def test_fetch_in_candidate_order(self):
        tail = ints([10, 20, 30])
        out = projection(np.array([2, 0], dtype=np.int64), tail)
        assert out.python_list() == [30, 10]

    def test_result_is_dense_from_zero(self):
        tail = ints([10, 20], hseqbase=5)
        out = projection(np.array([6], dtype=np.int64), tail)
        assert out.hseqbase == 0 and out.python_list() == [20]

    def test_empty(self):
        out = projection(np.empty(0, dtype=np.int64), ints([1]))
        assert len(out) == 0


class TestHashJoin:
    def test_basic_matches(self):
        l, r = hash_join(ints([1, 2, 3]), ints([2, 3, 3]))
        pairs = set(zip(l.tolist(), r.tolist()))
        assert pairs == {(1, 0), (2, 1), (2, 2)}

    def test_nulls_never_match(self):
        l, r = hash_join(ints([None, 1]), ints([None, 1]))
        assert set(zip(l.tolist(), r.tolist())) == {(1, 1)}

    def test_respects_hseqbase(self):
        l, r = hash_join(ints([7], hseqbase=10), ints([7], hseqbase=20))
        assert l.tolist() == [10] and r.tolist() == [20]

    def test_string_join(self):
        l, r = hash_join(strs(["a", "b"]), strs(["b"]))
        assert set(zip(l.tolist(), r.tolist())) == {(1, 0)}

    def test_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            hash_join(strs(["a"]), ints([1]))

    def test_candidates_restrict(self):
        left = ints([1, 1, 1])
        right = ints([1])
        cands = np.array([1], dtype=np.int64)
        l, r = hash_join(left, right, left_cands=cands)
        assert l.tolist() == [1]


class TestOuterJoin:
    def test_unmatched_left_gets_minus_one(self):
        l, r = left_outer_join(ints([1, 9]), ints([1]))
        assert list(zip(l.tolist(), r.tolist())) == [(0, 0), (1, -1)]

    def test_null_left_is_unmatched(self):
        l, r = left_outer_join(ints([None]), ints([None, 1]))
        assert list(zip(l.tolist(), r.tolist())) == [(0, -1)]


class TestThetaJoin:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "!="])
    def test_matches_nested_loop(self, op):
        import operator as _op

        fns = {
            "<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
            "!=": _op.ne,
        }
        lvals = [1, 3, None, 5]
        rvals = [2, None, 5]
        l, r = theta_join(ints(lvals), ints(rvals), op)
        got = set(zip(l.tolist(), r.tolist()))
        expect = {
            (i, j)
            for i, lv in enumerate(lvals)
            for j, rv in enumerate(rvals)
            if lv is not None and rv is not None and fns[op](lv, rv)
        }
        assert got == expect

    def test_equality_delegates_to_hash(self):
        l, r = theta_join(ints([1, 2]), ints([2]), "==")
        assert set(zip(l.tolist(), r.tolist())) == {(1, 0)}

    def test_bad_op(self):
        with pytest.raises(KernelError):
            theta_join(ints([1]), ints([1]), "~=")


class TestCross:
    def test_cross_positions(self):
        l, r = cross_positions(2, 3)
        assert len(l) == 6
        assert set(zip(l.tolist(), r.tolist())) == {
            (i, j) for i in range(2) for j in range(3)
        }


class TestGroup:
    def test_single_column(self):
        groups, extents, n = group(strs(["a", "b", "a"]))
        assert n == 2
        assert groups.python_list() == [0, 1, 0]
        assert extents.tolist() == [0, 1]

    def test_nulls_form_one_group(self):
        _, _, n = group(ints([None, None, 1]))
        assert n == 2

    def test_subgroup_refines(self):
        g1, _, n1 = group(strs(["a", "a", "b", "b"]))
        g2, extents, n2 = subgroup(ints([1, 2, 1, 1]), g1)
        assert n2 == 3
        assert g2.python_list() == [0, 1, 2, 2]

    def test_distinct_positions(self):
        pos = distinct_positions(ints([5, 5, 7, 5, 7]))
        assert pos.tolist() == [0, 2]

    def test_group_with_candidates(self):
        cands = np.array([1, 2], dtype=np.int64)
        _, _, n = group(ints([1, 2, 2]), cands)
        assert n == 1


class TestScalarAggregates:
    def test_sum_skips_nulls(self):
        assert scalar_aggregate("sum", ints([1, None, 2])) == 3

    def test_count_vs_count_star(self):
        b = ints([1, None])
        assert scalar_aggregate("count", b) == 1
        assert scalar_aggregate("count_star", b) == 2

    def test_empty_aggregates_are_null(self):
        b = ints([])
        for name in ("sum", "avg", "min", "max"):
            assert scalar_aggregate(name, b) is None
        assert scalar_aggregate("count", b) == 0

    def test_avg(self):
        assert scalar_aggregate("avg", ints([1, 2, 3])) == 2.0

    def test_min_max(self):
        b = ints([5, None, 1, 9])
        assert scalar_aggregate("min", b) == 1
        assert scalar_aggregate("max", b) == 9

    def test_str_min_max(self):
        b = strs(["pear", "apple", None])
        assert scalar_aggregate("min", b) == "apple"
        assert scalar_aggregate("max", b) == "pear"

    def test_str_sum_raises(self):
        with pytest.raises(TypeMismatchError):
            scalar_aggregate("sum", strs(["a"]))

    def test_unknown_aggregate(self):
        with pytest.raises(KernelError):
            scalar_aggregate("median", ints([1]))

    def test_integral_sum_is_int(self):
        out = scalar_aggregate("sum", ints([1, 2]))
        assert isinstance(out, int)


class TestGroupedAggregates:
    def test_subsum(self):
        keys = strs(["a", "b", "a"])
        vals = ints([1, 10, 2])
        groups, _, n = group(keys)
        out = grouped_aggregate("sum", vals, groups, n)
        assert out.python_list() == [3, 10]

    def test_subcount_skips_nulls(self):
        keys = strs(["a", "a"])
        vals = ints([1, None])
        groups, _, n = group(keys)
        assert grouped_aggregate("count", vals, groups, n).python_list() == [1]
        assert grouped_aggregate(
            "count_star", vals, groups, n
        ).python_list() == [2]

    def test_subavg(self):
        keys = strs(["a", "a", "b"])
        vals = ints([1, 3, 10])
        groups, _, n = group(keys)
        assert grouped_aggregate("avg", vals, groups, n).python_list() == [2.0, 10.0]

    def test_submin_submax(self):
        keys = strs(["a", "a", "b"])
        vals = ints([4, 2, 9])
        groups, _, n = group(keys)
        assert grouped_aggregate("min", vals, groups, n).python_list() == [2, 9]
        assert grouped_aggregate("max", vals, groups, n).python_list() == [4, 9]

    def test_all_null_group_yields_null(self):
        keys = strs(["a", "b"])
        vals = ints([None, 5])
        groups, _, n = group(keys)
        assert grouped_aggregate("sum", vals, groups, n).python_list() == [None, 5]

    def test_str_grouped_min(self):
        keys = ints([0, 0, 1])
        vals = strs(["b", "a", "z"])
        groups, _, n = group(keys)
        assert grouped_aggregate("min", vals, groups, n).python_list() == ["a", "z"]

    def test_misaligned_groups_raise(self):
        groups, _, n = group(ints([1, 2]))
        with pytest.raises(KernelError):
            grouped_aggregate("sum", ints([1]), groups, n)


class TestAggregateState:
    def test_add_and_result(self):
        s = AggregateState()
        for v in (1.0, 5.0, 3.0):
            s.add_value(v)
        assert s.result("count") == 3
        assert s.result("sum") == 9.0
        assert s.result("avg") == 3.0
        assert s.result("min") == 1.0
        assert s.result("max") == 5.0

    def test_empty_results(self):
        s = AggregateState()
        assert s.result("count") == 0
        assert s.result("sum") is None
        assert s.result("min") is None

    def test_merge_equals_bulk(self):
        a, b = AggregateState(), AggregateState()
        a.add_array(np.array([1.0, 2.0]))
        b.add_array(np.array([10.0]))
        merged = a.merge(b)
        ref = AggregateState()
        ref.add_array(np.array([1.0, 2.0, 10.0]))
        assert merged.result("sum") == ref.result("sum")
        assert merged.result("min") == ref.result("min")
        assert merged.result("max") == ref.result("max")
        assert merged.result("count") == ref.result("count")

    @given(
        st.lists(st.floats(-100, 100), max_size=50),
        st.lists(st.floats(-100, 100), max_size=50),
    )
    def test_merge_commutes(self, left, right):
        a, b = AggregateState(), AggregateState()
        a.add_array(np.asarray(left))
        b.add_array(np.asarray(right))
        ab, ba = a.merge(b), b.merge(a)
        for name in ("count", "min", "max"):
            assert ab.result(name) == ba.result(name)
        if ab.count:
            assert abs(ab.result("sum") - ba.result("sum")) < 1e-9


class TestSort:
    def test_ascending_stable(self):
        b = ints([3, 1, 2, 1])
        assert order(b).tolist() == [1, 3, 2, 0]

    def test_descending(self):
        b = ints([3, 1, 2])
        assert order(b, descending=True).tolist() == [0, 2, 1]

    def test_nulls_first_ascending(self):
        b = ints([3, None, 1])
        assert order(b).tolist() == [1, 2, 0]

    def test_refine_secondary_key(self):
        first = strs(["b", "a", "a"])
        second = ints([9, 2, 1])
        primary = order(first)
        final = refine(second, primary)
        # 'a' rows sorted by second key, then 'b'
        assert final.tolist() == [2, 1, 0]

    def test_topn(self):
        b = ints([5, 1, 4, 2])
        assert topn(b, 2).tolist() == [1, 3]
        assert topn(b, 2, descending=True).tolist() == [0, 2]

    def test_string_sort(self):
        b = strs(["pear", None, "apple"])
        assert order(b).tolist() == [1, 2, 0]

    @given(st.lists(st.integers(-100, 100), max_size=80))
    def test_order_matches_sorted(self, values):
        b = ints(values)
        perm = order(b)
        got = [values[i] for i in perm.tolist()]
        assert got == sorted(values)
