"""Tests for load-shedding policies and topology introspection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataCell, LogicalClock
from repro.core.basket import Basket
from repro.core.clock import LogicalClock as LC
from repro.core.shedding import (
    LoadShedController,
    apply_shedding_policy,
)
from repro.core.topology import build_topology
from repro.errors import BasketError
from repro.kernel.types import AtomType


def make_basket(values):
    b = Basket("s", [("v", AtomType.INT)], LC())
    b.insert_rows([(v,) for v in values])
    return b


class TestPolicies:
    def test_oldest_keeps_freshest(self):
        b = make_basket(range(10))
        dropped = apply_shedding_policy(b, 4, "oldest")
        assert dropped == 6
        assert [r[0] for r in b.rows()] == [6, 7, 8, 9]

    def test_newest_keeps_backlog(self):
        b = make_basket(range(10))
        apply_shedding_policy(b, 4, "newest")
        assert [r[0] for r in b.rows()] == [0, 1, 2, 3]

    def test_sample_keeps_capacity_in_order(self):
        import random

        b = make_basket(range(100))
        apply_shedding_policy(b, 30, "sample", random.Random(1))
        kept = [r[0] for r in b.rows()]
        assert len(kept) == 30
        assert kept == sorted(kept), "sampling preserves arrival order"

    def test_under_capacity_is_noop(self):
        b = make_basket(range(3))
        assert apply_shedding_policy(b, 10, "oldest") == 0
        assert b.count == 3

    def test_unknown_policy(self):
        with pytest.raises(BasketError):
            apply_shedding_policy(make_basket([1]), 0, "psychic")

    def test_negative_capacity(self):
        with pytest.raises(BasketError):
            apply_shedding_policy(make_basket([1]), -1)

    def test_shed_counter_updates(self):
        b = make_basket(range(10))
        apply_shedding_policy(b, 5, "oldest")
        assert b.total_shed == 5

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=60),
        st.integers(0, 60),
        st.sampled_from(["oldest", "newest", "sample"]),
    )
    def test_capacity_respected(self, values, capacity, policy):
        b = make_basket(values)
        dropped = apply_shedding_policy(b, capacity, policy)
        assert b.count == min(len(values), capacity)
        assert dropped == max(0, len(values) - capacity)

    def test_sequences_stay_consistent_after_shedding(self):
        """Shedding must not confuse shared-reader cursors."""
        b = make_basket(range(10))
        b.register_reader("q")
        apply_shedding_policy(b, 5, "oldest")
        snap = b.read_new("q")
        assert snap.count == 5
        assert [int(s) for s in snap.seqs] == [5, 6, 7, 8, 9]


class TestController:
    def test_engages_over_budget(self):
        a = make_basket(range(50))
        b = make_basket(range(50))
        controller = LoadShedController([a, b], budget=40)
        dropped = controller.tick()
        assert dropped > 0
        assert controller.engaged
        assert controller.buffered() <= 40

    def test_idle_under_budget(self):
        a = make_basket(range(5))
        controller = LoadShedController([a], budget=100)
        assert controller.tick() == 0
        assert not controller.engaged

    def test_hysteresis_releases(self):
        a = make_basket(range(100))
        controller = LoadShedController([a], budget=50, release_ratio=0.5)
        controller.tick()
        assert controller.engaged
        a.consume_all()
        controller.tick()
        assert not controller.engaged

    def test_validation(self):
        with pytest.raises(BasketError):
            LoadShedController([], budget=10)
        with pytest.raises(BasketError):
            LoadShedController([make_basket([1])], budget=0)
        with pytest.raises(BasketError):
            LoadShedController([make_basket([1])], budget=5, policy="nope")

    def test_stats(self):
        a = make_basket(range(20))
        controller = LoadShedController([a], budget=10)
        controller.tick()
        stats = controller.stats()
        assert stats["dropped"] > 0
        assert stats["ticks"] == 1


class TestTopology:
    def build_cell(self):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket s (v int)")
        cell.add_receptor("rx", ["s"])
        q = cell.submit_continuous(
            "select * from [select * from s] as x where x.v > 0",
            name="filter",
        )
        return cell, q

    def test_places_and_transitions_recovered(self):
        cell, _ = self.build_cell()
        topo = build_topology(cell.scheduler)
        kinds = dict(topo.transitions)
        assert kinds["rx"] == "receptor"
        assert kinds["filter"] == "factory"
        assert kinds["filter_emitter"] == "emitter"
        assert "s" in topo.places
        assert "filter_out" in topo.places

    def test_arcs_form_figure1_chain(self):
        cell, _ = self.build_cell()
        topo = build_topology(cell.scheduler)
        # channel -> rx -> s -> filter -> filter_out -> emitter -> clients
        downstream = topo.downstream_of("channel:rx_channel")
        assert {"rx", "s", "filter", "filter_out", "filter_emitter"} <= (
            downstream
        )

    def test_predecessors_successors(self):
        cell, _ = self.build_cell()
        topo = build_topology(cell.scheduler)
        assert topo.successors("s") == ["filter"]
        assert "rx" in topo.predecessors("s")

    def test_dot_rendering(self):
        cell, _ = self.build_cell()
        dot = build_topology(cell.scheduler).to_dot()
        assert dot.startswith("digraph datacell {")
        assert '"s" -> "filter";' in dot
        assert "shape=box" in dot and "shape=ellipse" in dot

    def test_replicator_recognized(self):
        from repro.core.scheduler import Scheduler
        from repro.core.strategies import (
            RangeQuery,
            build_separate_pipeline,
        )

        clock = LC()
        stream = Basket("raw", [("v", AtomType.INT)], clock)
        net = build_separate_pipeline(
            stream, [RangeQuery("q1", "v", 0, 5)], clock
        )
        scheduler = Scheduler()
        for t in net.all_transitions():
            scheduler.register(t)
        topo = build_topology(scheduler)
        kinds = dict(topo.transitions)
        assert kinds["raw_replicator"] == "replicator"
        assert "raw" in topo.places
