"""Tests for the Linear Road subsystem: generator, queries, validation.

The flagship property: the DataCell network's outputs are *batch
invariant* — replaying the same log one tick at a time or all at once
yields identical tolls/alerts — and always match the independent
sequential oracle.
"""

import pytest

from repro.linearroad import (
    LinearRoadConfig,
    LinearRoadGenerator,
    LinearRoadHarness,
    LinearRoadReference,
    toll_formula,
)
from repro.linearroad.model import (
    NUM_SEGMENTS,
    REPORT_INTERVAL,
    PositionReport,
)
from repro.errors import LinearRoadError


SMALL = LinearRoadConfig(
    scale=0.5, duration=300, cars_per_minute=60,
    accident_probability=0.01, seed=13,
)

CONGESTED = LinearRoadConfig(
    scale=0.5, duration=360, cars_per_minute=400,
    accident_probability=0.004, seed=11,
)


class TestModel:
    def test_toll_formula(self):
        assert toll_formula(50) == 0
        assert toll_formula(51) == 2
        assert toll_formula(60) == 200
        assert toll_formula(10) == 0

    def test_config_validation(self):
        with pytest.raises(LinearRoadError):
            LinearRoadConfig(scale=0)
        with pytest.raises(LinearRoadError):
            LinearRoadConfig(duration=-1)

    def test_num_xways_scales(self):
        assert LinearRoadConfig(scale=0.5).num_xways == 1
        assert LinearRoadConfig(scale=1.0).num_xways == 1
        assert LinearRoadConfig(scale=2.0).num_xways == 2

    def test_report_as_row(self):
        r = PositionReport(30, 1, 55, 0, 2, 0, 42, 42 * 5280)
        assert r.as_row() == (30, 1, 55, 0, 2, 0, 42, 221760)


class TestGenerator:
    def test_deterministic(self):
        a = LinearRoadGenerator(SMALL).generate()
        b = LinearRoadGenerator(SMALL).generate()
        assert a == b

    def test_reports_time_ordered(self):
        reports = LinearRoadGenerator(SMALL).generate()
        times = [r.t for r in reports]
        assert times == sorted(times)

    def test_reports_in_domain(self):
        for r in LinearRoadGenerator(SMALL).generate():
            assert 0 <= r.seg < NUM_SEGMENTS
            assert 0 <= r.speed <= 100
            assert r.dir in (0, 1)
            assert 0 <= r.lane <= 4
            assert r.t % REPORT_INTERVAL == 0

    def test_one_report_per_car_per_tick(self):
        reports = LinearRoadGenerator(SMALL).generate()
        seen = set()
        for r in reports:
            key = (r.t, r.vid)
            assert key not in seen
            seen.add(key)

    def test_accidents_occur(self):
        gen = LinearRoadGenerator(SMALL)
        gen.generate()
        assert gen.accidents_caused > 0

    def test_stopped_cars_repeat_position(self):
        reports = LinearRoadGenerator(SMALL).generate()
        by_vid = {}
        stopped_repeats = 0
        for r in reports:
            prev = by_vid.get(r.vid)
            if prev and r.speed == 0 and prev.speed == 0 and r.pos == prev.pos:
                stopped_repeats += 1
            by_vid[r.vid] = r
        assert stopped_repeats > 0

    def test_balance_requests_reference_real_vids(self):
        gen = LinearRoadGenerator(SMALL)
        reports = gen.generate()
        vids = {r.vid for r in reports}
        requests = gen.balance_requests(reports, rate=0.05)
        assert requests, "some requests generated"
        for t, vid, qid in requests:
            assert vid in vids


class TestReference:
    def test_reference_is_idempotent(self):
        reports = LinearRoadGenerator(SMALL).generate()
        ref = LinearRoadReference(reports).compute()
        tolls_before = list(ref.tolls)
        ref.compute()
        assert ref.tolls == tolls_before

    def test_congested_reference_produces_tolls(self):
        reports = LinearRoadGenerator(CONGESTED).generate()
        ref = LinearRoadReference(reports).compute()
        nonzero = [t for t in ref.tolls if t[3] > 0]
        assert nonzero, "congested scenario must assess tolls"

    def test_accident_scenario_produces_alerts(self):
        reports = LinearRoadGenerator(CONGESTED).generate()
        ref = LinearRoadReference(reports).compute()
        assert ref.alerts, "pile-ups must trigger alerts"

    def test_balances_accumulate(self):
        reports = LinearRoadGenerator(CONGESTED).generate()
        ref = LinearRoadReference(reports).compute()
        paying = [v for v, toll, t in ref._toll_history]
        assert paying
        vid = paying[0]
        end = max(r.t for r in reports) + 1
        assert ref.balance_before(vid, end) > 0
        assert ref.balance_before(vid, 0) == 0


class TestHarness:
    def test_validated_run(self):
        result = LinearRoadHarness(SMALL).run()
        assert result.valid, result.validation_problems
        assert result.reports > 0
        assert result.tolls, "every crossing gets a toll notification"

    def test_congested_run_assesses_tolls_and_alerts(self):
        result = LinearRoadHarness(CONGESTED).run()
        assert result.valid, result.validation_problems
        assert any(t[3] > 0 for t in result.tolls)
        assert result.alerts

    def test_batch_invariance(self):
        """Same outputs whether replayed tick-by-tick or all at once."""
        gen = LinearRoadGenerator(SMALL)
        reports = gen.generate()
        requests = gen.balance_requests(reports)
        one = LinearRoadHarness(SMALL).run(
            reports, requests, ticks_per_batch=1, validate=False
        )
        big = LinearRoadHarness(SMALL).run(
            reports, requests, ticks_per_batch=10_000, validate=False
        )
        assert sorted(one.tolls) == sorted(big.tolls)
        assert sorted(one.alerts) == sorted(big.alerts)
        assert sorted(one.balances) == sorted(big.balances)

    def test_balance_responses_match_oracle(self):
        gen = LinearRoadGenerator(CONGESTED)
        reports = gen.generate()
        requests = gen.balance_requests(reports, rate=0.02)
        result = LinearRoadHarness(CONGESTED).run(reports, requests)
        assert result.valid, result.validation_problems
        assert result.balances

    def test_metrics_populated(self):
        result = LinearRoadHarness(SMALL).run()
        assert result.throughput > 0
        assert result.max_response_time >= result.avg_response_time >= 0
        assert result.tick_latencies
