"""Tests for the benchmark harness helpers (runner, reporting, summary)."""

import json


from repro.bench.reporting import print_table, record_result
from repro.bench.runner import (
    Measurement,
    build_figure1_pipeline,
    run_stream_through,
)
from repro.bench.summary import render_markdown


class TestRunner:
    def test_pipeline_fixture_wiring(self):
        fixture = build_figure1_pipeline(low=10, high=20)
        assert fixture.scheduler.transitions()
        fixture.channel.push((15,))
        fixture.scheduler.run_until_quiescent()
        assert fixture.client.rows == [(15,)]

    def test_run_stream_through(self):
        fixture = build_figure1_pipeline(low=0, high=100)
        rows = [(v,) for v in range(50)]
        m = run_stream_through(fixture, rows, batch_size=10)
        assert m.tuples == 50
        assert m.extra["delivered"] == 50
        assert m.throughput > 0

    def test_measurement_throughput(self):
        m = Measurement("x", wall_seconds=2.0, tuples=100)
        assert m.throughput == 50.0
        assert Measurement("z", 0.0, 10).throughput == 0.0

    def test_filter_selectivity(self):
        fixture = build_figure1_pipeline(low=10, high=19)
        rows = [(v,) for v in range(100)]
        m = run_stream_through(fixture, rows, batch_size=100)
        assert m.extra["delivered"] == 10


class TestReporting:
    def test_print_table(self, capsys):
        print_table("demo", ["a", "bb"], [[1, 2.5], ["xx", 12345.0]])
        out = capsys.readouterr().out
        assert "== demo ==" in out
        assert "a" in out and "bb" in out
        assert "12,345" in out

    def test_print_empty_table(self, capsys):
        print_table("empty", ["col"], [])
        assert "empty" in capsys.readouterr().out

    def test_record_result_roundtrip(self, tmp_path, monkeypatch):
        target = tmp_path / "results.json"
        monkeypatch.setattr(
            "repro.bench.reporting.RESULTS_PATH", str(target)
        )
        record_result("X1", {"claim": "c", "value": 1})
        record_result("X2", {"claim": "d"})
        data = json.loads(target.read_text())
        assert set(data) == {"X1", "X2"}

    def test_record_result_overwrites_same_key(self, tmp_path, monkeypatch):
        target = tmp_path / "results.json"
        monkeypatch.setattr(
            "repro.bench.reporting.RESULTS_PATH", str(target)
        )
        record_result("X1", {"v": 1})
        record_result("X1", {"v": 2})
        assert json.loads(target.read_text())["X1"]["v"] == 2

    def test_record_result_recovers_from_corrupt_file(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "results.json"
        target.write_text("{corrupt")
        monkeypatch.setattr(
            "repro.bench.reporting.RESULTS_PATH", str(target)
        )
        record_result("X1", {"v": 1})
        assert json.loads(target.read_text())["X1"]["v"] == 1


class TestSummary:
    def test_render_markdown(self):
        results = {
            "F1": {
                "claim": "demo",
                "series": [
                    {"batch": 1, "throughput": 100.0},
                    {"batch": 10, "throughput": 12345.6},
                ],
            },
            "P1": {"claim": "scalar only", "speedup": 12.4},
        }
        text = render_markdown(results)
        assert "### F1 — demo" in text
        assert "| batch | throughput |" in text
        assert "12,346" in text
        assert "speedup: 12.40" in text

    def test_booleans_render_as_yes_no(self):
        text = render_markdown(
            {"LR": {"claim": "x", "series": [{"ok": True}]}}
        )
        assert "| yes |" in text
