"""The simulated scheduler: determinism, policies, virtual time.

The harness's foundational promise (asserted here, relied on everywhere
else): an episode is a pure function of ``(seed, policy, fault plan,
input script)`` — same spec, same firing sequence, same emitted baskets,
bit for bit.
"""

import pytest

from repro.core.clock import VirtualClock
from repro.errors import SchedulerError
from repro.simtest import EpisodeSpec, SimScheduler
from repro.simtest.oracle import run_streaming
from repro.simtest.policies import make_policy, policy_names
from repro.simtest.sim import INGEST

ROWS = tuple((i % 25, i % 7) for i in range(40))


def spec(**overrides):
    base = dict(seed=11, rows=ROWS, case="filter", policy="random")
    base.update(overrides)
    return EpisodeSpec(**base)


class TestBitReproducibility:
    def test_same_spec_same_episode(self):
        first = run_streaming(spec())
        second = run_streaming(spec())
        assert first.episode.firings == second.episode.firings
        assert first.episode.basket_digests == second.episode.basket_digests
        assert first.episode.signature() == second.episode.signature()
        assert first.rows == second.rows

    def test_same_faulted_spec_same_episode(self):
        faulted = spec(batch_fault_rate=0.4, exception_rate=0.2)
        first = run_streaming(faulted)
        second = run_streaming(faulted)
        assert first.episode.signature() == second.episode.signature()
        assert first.delivered == second.delivered
        assert (
            first.episode.injected_exceptions
            == second.episode.injected_exceptions
        )

    def test_seed_changes_random_schedule(self):
        # time_step=0 makes every scripted batch due at once, so the
        # policy has real choices (ingest vs receptor vs factory) at
        # every firing — spaced input forces a single enabled candidate
        a = run_streaming(spec(seed=1, time_step=0.0)).episode
        b = run_streaming(spec(seed=2, time_step=0.0)).episode
        assert a.firing_names() != b.firing_names()

    def test_policy_changes_schedule(self):
        a = run_streaming(spec(policy="priority", time_step=0.0)).episode
        b = run_streaming(spec(policy="inverted", time_step=0.0)).episode
        assert a.firing_names() != b.firing_names()


class TestPolicies:
    @pytest.mark.parametrize(
        "policy", list(policy_names()) + ["starve:tap"]
    )
    def test_ingest_is_interleaved_not_front_loaded(self, policy):
        episode = run_streaming(spec(policy=policy)).episode
        names = episode.firing_names()
        ingests = [i for i, n in enumerate(names) if n == INGEST]
        assert len(ingests) == len(spec().input_events())
        # scripted input arrives over virtual time, so processing firings
        # must appear between ingest firings, not only after all of them
        assert ingests[-1] > names.index("tap")

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(SchedulerError):
            make_policy("fifo")

    def test_random_policy_requires_rng(self):
        with pytest.raises(SchedulerError):
            make_policy("random")


class TestSimSchedulerGuards:
    def test_threaded_start_refused(self):
        with pytest.raises(SchedulerError):
            SimScheduler(seed=0).start()

    def test_unbound_channel_is_an_error(self):
        sim = SimScheduler(seed=0, policy="priority")
        from repro.simtest import InputEvent

        with pytest.raises(SchedulerError):
            sim.run_episode([InputEvent.make(0.0, "nowhere", [(1, 2)])])

    def test_livelock_guard(self):
        class Perpetual:
            name = "spin"
            priority = 1

            def enabled(self):
                return True

            def activate(self):
                from repro.core.factory import ActivationResult

                return ActivationResult(fired=True)

        sim = SimScheduler(seed=0, policy="priority")
        sim.register(Perpetual())
        with pytest.raises(SchedulerError, match="quiesce"):
            sim.run_episode([], max_firings=25)


class TestVirtualClock:
    def test_advance_fires_timers_in_deadline_order(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(clock.now() + 2.0, lambda: fired.append("late"))
        clock.schedule(clock.now() + 1.0, lambda: fired.append("early"))
        clock.advance(0.5)
        assert fired == []
        clock.advance(5.0)
        assert fired == ["early", "late"]

    def test_registration_breaks_deadline_ties(self):
        clock = VirtualClock()
        fired = []
        at = clock.now() + 1.0
        clock.schedule(at, lambda: fired.append("first"))
        clock.schedule(at, lambda: fired.append("second"))
        clock.set(at)
        assert fired == ["first", "second"]

    def test_past_deadline_refused(self):
        clock = VirtualClock()
        clock.advance(10.0)
        with pytest.raises(Exception):
            clock.schedule(clock.now() - 1.0, lambda: None)

    def test_next_timer_and_pending(self):
        clock = VirtualClock()
        assert clock.next_timer() == float("inf")
        clock.schedule(clock.now() + 3.0, lambda: None)
        assert clock.next_timer() == clock.now() + 3.0
        assert clock.pending_timers() == 1
        clock.advance(3.0)
        assert clock.pending_timers() == 0
