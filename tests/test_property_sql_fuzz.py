"""SQL fuzz tests: generated queries checked against a python oracle.

Hypothesis builds random WHERE predicates and select expressions over a
random table; the compiled MAL plan must agree with direct evaluation of
the same predicate in python (NULL-aware three-valued logic included).
"""

import operator

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.kernel.catalog import Catalog
from repro.kernel.interpreter import MalInterpreter
from repro.kernel.types import AtomType
from repro.sql.compiler import compile_select
from repro.sql.optimizer import optimize
from repro.sql.parser import parse_select
from repro.testing import current_seed


# ----------------------------------------------------------------------
# predicate AST (mirrors the SQL subset we fuzz)
# ----------------------------------------------------------------------
@st.composite
def predicates(draw, depth=0):
    """Return (sql_text, python_eval) pairs; eval returns True/False/None."""
    if depth >= 3 or draw(st.booleans()):
        column = draw(st.sampled_from(["a", "b"]))
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        value = draw(st.integers(-20, 20))
        fns = {
            "=": operator.eq,
            "<>": operator.ne,
            "<": operator.lt,
            "<=": operator.le,
            ">": operator.gt,
            ">=": operator.ge,
        }

        def leaf(row, c=column, f=fns[op], v=value):
            x = row[c]
            if x is None:
                return None
            return f(x, v)

        return f"{column} {op} {value}", leaf
    kind = draw(st.sampled_from(["and", "or", "not", "between", "isnull"]))
    if kind == "not":
        text, fn = draw(predicates(depth=depth + 1))

        def neg(row, f=fn):
            v = f(row)
            return None if v is None else (not v)

        return f"not ({text})", neg
    if kind == "between":
        column = draw(st.sampled_from(["a", "b"]))
        lo = draw(st.integers(-20, 10))
        hi = lo + draw(st.integers(0, 15))

        def between(row, c=column, lo=lo, hi=hi):
            x = row[c]
            if x is None:
                return None
            return lo <= x <= hi

        return f"{column} between {lo} and {hi}", between
    if kind == "isnull":
        column = draw(st.sampled_from(["a", "b"]))
        negated = draw(st.booleans())

        def isnull(row, c=column, n=negated):
            hit = row[c] is None
            return (not hit) if n else hit

        suffix = "is not null" if negated else "is null"
        return f"{column} {suffix}", isnull
    left_text, left_fn = draw(predicates(depth=depth + 1))
    right_text, right_fn = draw(predicates(depth=depth + 1))
    if kind == "and":

        def conj(row, l=left_fn, r=right_fn):
            lv, rv = l(row), r(row)
            if lv is False or rv is False:
                return False
            if lv is None or rv is None:
                return None
            return True

        return f"({left_text}) and ({right_text})", conj

    def disj(row, l=left_fn, r=right_fn):
        lv, rv = l(row), r(row)
        if lv is True or rv is True:
            return True
        if lv is None or rv is None:
            return None
        return False

    return f"({left_text}) or ({right_text})", disj


def rows_strategy():
    cell_value = st.one_of(st.none(), st.integers(-25, 25))
    return st.lists(st.tuples(cell_value, cell_value), max_size=40)


def build_catalog(rows):
    catalog = Catalog()
    table = catalog.create_table(
        "d", [("a", AtomType.INT), ("b", AtomType.INT)]
    )
    table.append_rows(rows)
    return catalog


class TestWherePredicateFuzz:
    @seed(current_seed())
    @settings(max_examples=120, deadline=None)
    @given(rows=rows_strategy(), pred=predicates())
    def test_where_matches_oracle(self, rows, pred):
        text, fn = pred
        catalog = build_catalog(rows)
        compiled = compile_select(
            catalog, parse_select(f"select a, b from d where {text}")
        )
        got = MalInterpreter(catalog).run(compiled.program).rows()
        expected = [
            (a, b) for a, b in rows if fn({"a": a, "b": b}) is True
        ]
        assert got == expected

    @seed(current_seed())
    @settings(max_examples=60, deadline=None)
    @given(rows=rows_strategy(), pred=predicates())
    def test_optimizer_preserves_semantics(self, rows, pred):
        text, _ = pred
        catalog = build_catalog(rows)
        compiled = compile_select(
            catalog,
            parse_select(f"select b, a from d where {text} order by a, b"),
        )
        raw = MalInterpreter(catalog).run(compiled.program).rows()
        optimized, _ = optimize(compiled.program)
        opt = MalInterpreter(catalog).run(optimized).rows()
        assert raw == opt


class TestExpressionFuzz:
    @seed(current_seed())
    @settings(max_examples=80, deadline=None)
    @given(
        rows=rows_strategy(),
        coefficients=st.tuples(
            st.integers(-5, 5), st.integers(-5, 5), st.integers(1, 7)
        ),
    )
    def test_arithmetic_matches_oracle(self, rows, coefficients):
        p, q, m = coefficients
        catalog = build_catalog(rows)
        sql = f"select a * {p} + b * {q} - (a % {m}) from d"
        compiled = compile_select(catalog, parse_select(sql))
        got = [
            r[0] for r in MalInterpreter(catalog).run(compiled.program).rows()
        ]
        expected = []
        for a, b in rows:
            if a is None or b is None:
                expected.append(None)
            else:
                # kernel modulo follows numpy/python semantics (sign of
                # the divisor), same as python's %
                expected.append(a * p + b * q - (a % m))
        assert got == expected

    @seed(current_seed())
    @settings(max_examples=60, deadline=None)
    @given(rows=rows_strategy())
    def test_aggregates_match_oracle(self, rows):
        catalog = build_catalog(rows)
        sql = (
            "select count(*), count(a), sum(a), min(b), max(b) from d"
        )
        compiled = compile_select(catalog, parse_select(sql))
        got = MalInterpreter(catalog).run(compiled.program).rows()[0]
        a_vals = [a for a, _ in rows if a is not None]
        b_vals = [b for _, b in rows if b is not None]
        expected = (
            len(rows),
            len(a_vals),
            sum(a_vals) if a_vals else None,
            min(b_vals) if b_vals else None,
            max(b_vals) if b_vals else None,
        )
        assert got == expected

    @seed(current_seed())
    @settings(max_examples=60, deadline=None)
    @given(rows=rows_strategy(), pivot=st.integers(-10, 10))
    def test_group_by_matches_oracle(self, rows, pivot):
        catalog = build_catalog(rows)
        sql = (
            f"select a, count(*), sum(b) from d where a > {pivot} "
            "group by a order by a"
        )
        compiled = compile_select(catalog, parse_select(sql))
        got = MalInterpreter(catalog).run(compiled.program).rows()
        groups = {}
        for a, b in rows:
            if a is not None and a > pivot:
                entry = groups.setdefault(a, [0, 0, False])
                entry[0] += 1
                if b is not None:
                    entry[1] += b
                    entry[2] = True
        expected = [
            (a, c, s if has else None)
            for a, (c, s, has) in sorted(groups.items())
        ]
        assert got == expected
