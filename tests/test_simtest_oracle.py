"""The differential oracle and its shrinker.

Two halves: correct pipelines must pass the streaming ≡ one-shot check
under every policy, batching and fault mix (no false positives); and a
deliberately planted consumption bug must be caught *and* shrunk to a
repro of at most 10 input tuples (no false negatives, and failures come
back actionable).  The planted bug flips the query's input binding to
PEEK, which re-emits unconsumed tuples — exactly the class of
consumption-semantics mistake the harness exists to catch.
"""

import random

import pytest

from repro.core.factory import ConsumeMode
from repro.simtest import (
    ORACLE_CASES,
    EpisodeSpec,
    check_episode,
    render_repro,
    shrink_episode,
)


def random_spec(seed, **overrides):
    rng = random.Random(f"oracle-test:{seed}")
    fields = dict(
        seed=seed,
        rows=tuple(
            (rng.randint(-5, 30), rng.randint(0, 10))
            for _ in range(rng.randint(4, 50))
        ),
        case=rng.choice(sorted(ORACLE_CASES)),
        policy=rng.choice(
            ["priority", "round-robin", "random", "inverted", "starve:tap"]
        ),
        batch_size=rng.choice((1, 2, 3, 5, 8)),
    )
    fields.update(overrides)
    return EpisodeSpec(**fields)


class TestDifferentialHolds:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_clean_episodes(self, seed):
        result = check_episode(random_spec(seed))
        assert result.ok, result.explain()

    @pytest.mark.parametrize("seed", range(12, 20))
    def test_randomized_faulted_episodes(self, seed):
        result = check_episode(
            random_spec(seed, batch_fault_rate=0.3, exception_rate=0.1)
        )
        assert result.ok, result.explain()

    def test_empty_stream(self):
        result = check_episode(EpisodeSpec(seed=0, rows=()))
        assert result.ok
        assert not result.streaming and not result.oneshot

    def test_faults_change_delivery_not_equivalence(self):
        spec = random_spec(99, batch_fault_rate=0.8, case="passthrough")
        clean = check_episode(
            EpisodeSpec(
                seed=spec.seed, rows=spec.rows, case="passthrough"
            )
        )
        faulted = check_episode(spec)
        assert clean.ok and faulted.ok
        # seed 99's heavy fault mix does drop/duplicate something, so the
        # two runs see genuinely different delivered streams
        assert faulted.streaming != clean.streaming


def peek_bug(handle):
    handle.factory.inputs[0].mode = ConsumeMode.PEEK


class TestPlantedBugRegression:
    BASE = None  # built once; shrinking re-checks dozens of candidates

    @classmethod
    def base_spec(cls):
        if cls.BASE is None:
            cls.BASE = random_spec(
                5, case="filter", policy="random", batch_size=3
            )
        return cls.BASE

    def test_peek_bug_is_caught(self):
        result = check_episode(self.base_spec(), bug=peek_bug)
        assert not result.ok
        assert result.extra  # PEEK re-emits: streaming has surplus rows

    def test_peek_bug_shrinks_to_at_most_ten_tuples(self):
        shrunk, attempts = shrink_episode(self.base_spec(), bug=peek_bug)
        assert len(shrunk.rows) <= 10
        assert attempts <= 400
        # schedule simplified away too: no faults, deterministic policy
        assert shrunk.policy == "priority"
        assert shrunk.batch_fault_rate == 0.0
        # and the minimized spec still reproduces the failure
        assert not check_episode(shrunk, bug=peek_bug).ok


class TestRepro:
    def test_render_repro_round_trips(self):
        spec = random_spec(7, batch_fault_rate=0.25)
        rebuilt = eval(  # the repro line is designed to be pasted back
            render_repro(spec), {"EpisodeSpec": EpisodeSpec}
        )
        assert EpisodeSpec(**{**rebuilt.__dict__, "rows": tuple(rebuilt.rows)}) == spec

    def test_explain_names_the_diff(self):
        result = check_episode(self.failing_spec(), bug=peek_bug)
        text = result.explain()
        assert "EpisodeSpec" in text and "extra=" in text

    @staticmethod
    def failing_spec():
        return EpisodeSpec(
            seed=5, rows=((11, 7), (29, 4), (21, 8), (19, 0))
        )
