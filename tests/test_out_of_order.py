"""Out-of-order and batching-flexibility tests (paper §2.2).

"There is no a priori order; a basket is simply a (multi-)set of events"
— the DataCell's answers for order-insensitive queries must not depend on
arrival order or batch boundaries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataCell, LogicalClock
from repro.core.basket import Basket
from repro.core.clock import LogicalClock as LC
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import SlidingWindowJoinPlan
from repro.kernel.types import AtomType


class TestSelectionOrderInsensitive:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(-50, 50), max_size=40),
        st.randoms(use_true_random=False),
    )
    def test_predicate_window_results_are_a_set(self, values, rng):
        """Same multiset in, same multiset out, any arrival order."""

        def run(ordered):
            cell = DataCell(clock=LogicalClock())
            cell.execute("create basket s (v int)")
            q = cell.submit_continuous(
                "select * from [select * from s where s.v > 0] as x"
            )
            for v in ordered:
                cell.insert("s", [(v,)])
            cell.run_until_quiescent()
            return sorted(q.fetch())

        shuffled = list(values)
        rng.shuffle(shuffled)
        assert run(values) == run(shuffled)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.integers(-9, 9)),
            max_size=40,
        ),
        st.integers(1, 40),
    )
    def test_grouped_aggregate_batch_invariant(self, rows, batch):
        """Group-by results do not depend on how arrivals were batched."""

        def run(batch_size):
            cell = DataCell(clock=LogicalClock())
            cell.execute("create basket s (k varchar(2), v int)")
            q = cell.submit_continuous(
                "select x.k, sum(x.v), count(*) from "
                "[select * from s] as x group by x.k"
            )
            for i in range(0, len(rows), batch_size):
                cell.insert("s", rows[i : i + batch_size])
                cell.run_until_quiescent()
            # per-batch group rows: aggregate them for comparison
            totals = {}
            for k, total, count in q.fetch():
                entry = totals.setdefault(k, [0, 0])
                entry[0] += total if total is not None else 0
                entry[1] += count
            return totals

        assert run(batch) == run(len(rows) or 1)


class TestWindowJoinOutOfOrder:
    def test_join_pairs_insensitive_to_interleaving(self):
        """The symmetric window join finds the same pairs regardless of
        the order the two streams' tuples interleave (within the window
        bound, as the paper's multiset semantics promise)."""
        rng = random.Random(3)
        left = [(round(rng.uniform(0, 5), 2), rng.randint(1, 3))
                for _ in range(15)]
        right = [(round(rng.uniform(0, 5), 2), rng.randint(1, 3))
                 for _ in range(15)]

        def run(order_seed):
            clock = LC()
            lb = Basket("l", [("k", AtomType.LNG)], clock)
            rb = Basket("r", [("k", AtomType.LNG)], clock)
            out = Basket(
                "o",
                [("key", AtomType.LNG), ("lt", AtomType.TIMESTAMP),
                 ("rt", AtomType.TIMESTAMP)],
                clock,
            )
            plan = SlidingWindowJoinPlan("l", "r", "k", "k", 10.0, "o")
            f = Factory(
                "j", plan,
                [InputBinding(lb, ConsumeMode.ALL, min_tuples=0,
                              optional=True),
                 InputBinding(rb, ConsumeMode.ALL, min_tuples=0,
                              optional=True)],
                [out],
            )
            events = (
                [("l", t, k) for t, k in left]
                + [("r", t, k) for t, k in right]
            )
            random.Random(order_seed).shuffle(events)
            for side, stamp, key in events:
                target = lb if side == "l" else rb
                target.insert_rows([(key,)], timestamp=stamp)
                f.activate()
            return sorted(r[:3] for r in out.rows())

        first = run(1)
        assert first, "fixture must produce matches"
        for seed in (2, 3, 4):
            assert run(seed) == first
