"""Unit tests for the kernel atom-type system."""


import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.kernel.types import (
    AtomType,
    BOOL_NIL,
    INT_NIL,
    LNG_NIL,
    OID_NIL,
    coerce_scalar,
    common_type,
    is_nil,
    nil_mask,
    nil_value,
    numpy_dtype,
    parse_atom,
    python_value,
)


class TestDtypes:
    def test_every_atom_has_a_dtype(self):
        for atom in AtomType:
            assert numpy_dtype(atom) is not None

    def test_int_is_32_bit(self):
        assert numpy_dtype(AtomType.INT).itemsize == 4

    def test_lng_and_oid_are_64_bit(self):
        assert numpy_dtype(AtomType.LNG).itemsize == 8
        assert numpy_dtype(AtomType.OID).itemsize == 8

    def test_str_is_object(self):
        assert numpy_dtype(AtomType.STR) == np.dtype(object)


class TestNil:
    def test_none_is_nil_for_every_atom(self):
        for atom in AtomType:
            assert is_nil(atom, None)

    def test_nil_value_roundtrips(self):
        for atom in AtomType:
            assert is_nil(atom, nil_value(atom))

    def test_nan_is_nil_for_dbl(self):
        assert is_nil(AtomType.DBL, float("nan"))

    def test_regular_values_are_not_nil(self):
        assert not is_nil(AtomType.INT, 0)
        assert not is_nil(AtomType.DBL, 0.0)
        assert not is_nil(AtomType.STR, "")
        assert not is_nil(AtomType.BOOL, 0)

    def test_sentinels(self):
        assert int(INT_NIL) == -(2**31)
        assert int(LNG_NIL) == -(2**63)
        assert int(OID_NIL) == 2**63 - 1
        assert int(BOOL_NIL) == -1

    def test_nil_mask_int(self):
        arr = np.array([1, int(INT_NIL), 3], dtype=np.int32)
        assert nil_mask(AtomType.INT, arr).tolist() == [False, True, False]

    def test_nil_mask_str(self):
        arr = np.array(["a", None, "b"], dtype=object)
        assert nil_mask(AtomType.STR, arr).tolist() == [False, True, False]

    def test_nil_mask_dbl(self):
        arr = np.array([1.0, float("nan")])
        assert nil_mask(AtomType.DBL, arr).tolist() == [False, True]


class TestCommonType:
    def test_same_type_is_identity(self):
        for atom in AtomType:
            if atom is AtomType.STR:
                continue
            assert common_type(atom, atom) is atom

    def test_int_widens_to_lng(self):
        assert common_type(AtomType.INT, AtomType.LNG) is AtomType.LNG

    def test_int_widens_to_dbl(self):
        assert common_type(AtomType.INT, AtomType.DBL) is AtomType.DBL

    def test_lng_dbl_gives_dbl(self):
        assert common_type(AtomType.LNG, AtomType.DBL) is AtomType.DBL

    def test_oid_lng_gives_lng(self):
        assert common_type(AtomType.OID, AtomType.LNG) is AtomType.LNG

    def test_timestamp_dbl_gives_dbl(self):
        assert common_type(AtomType.TIMESTAMP, AtomType.DBL) is AtomType.DBL

    def test_str_with_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            common_type(AtomType.STR, AtomType.INT)

    def test_symmetry(self):
        pairs = [
            (AtomType.INT, AtomType.DBL),
            (AtomType.BOOL, AtomType.INT),
            (AtomType.LNG, AtomType.TIMESTAMP),
        ]
        for a, b in pairs:
            assert common_type(a, b) is common_type(b, a)


class TestCoerce:
    def test_none_becomes_nil(self):
        for atom in AtomType:
            assert is_nil(atom, coerce_scalar(atom, None))

    def test_bool_accepts_python_bool(self):
        assert coerce_scalar(AtomType.BOOL, True) == 1
        assert coerce_scalar(AtomType.BOOL, False) == 0

    def test_bool_rejects_out_of_domain(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(AtomType.BOOL, 7)

    def test_int_rejects_overflow(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(AtomType.INT, 2**40)

    def test_str_coerces_numbers(self):
        assert coerce_scalar(AtomType.STR, 12) == "12"

    def test_int_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(AtomType.INT, "twelve")

    def test_dbl_accepts_int(self):
        assert coerce_scalar(AtomType.DBL, 3) == 3.0


class TestPythonValue:
    def test_nil_becomes_none(self):
        for atom in AtomType:
            assert python_value(atom, nil_value(atom)) is None

    def test_bool_roundtrip(self):
        assert python_value(AtomType.BOOL, np.int8(1)) is True
        assert python_value(AtomType.BOOL, np.int8(0)) is False

    def test_int_returns_python_int(self):
        out = python_value(AtomType.INT, np.int32(5))
        assert out == 5 and isinstance(out, int)

    def test_dbl_returns_python_float(self):
        out = python_value(AtomType.DBL, np.float64(2.5))
        assert out == 2.5 and isinstance(out, float)


class TestParseAtom:
    def test_empty_and_null_map_to_nil(self):
        for atom in AtomType:
            assert is_nil(atom, parse_atom(atom, ""))
            assert is_nil(atom, parse_atom(atom, "null"))
            assert is_nil(atom, parse_atom(atom, "NULL"))

    def test_int_parsing(self):
        assert parse_atom(AtomType.INT, " 42 ") == 42

    def test_dbl_parsing(self):
        assert parse_atom(AtomType.DBL, "2.75") == 2.75

    def test_bool_spellings(self):
        for text in ("true", "T", "1"):
            assert parse_atom(AtomType.BOOL, text) == 1
        for text in ("false", "F", "0"):
            assert parse_atom(AtomType.BOOL, text) == 0

    def test_bool_garbage_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_atom(AtomType.BOOL, "maybe")

    def test_int_garbage_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_atom(AtomType.INT, "4.5x")

    def test_str_passthrough(self):
        assert parse_atom(AtomType.STR, " hello ") == "hello"
