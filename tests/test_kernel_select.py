"""Unit and property tests for selection primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel.bat import bat_from_values
from repro.kernel.select import (
    range_select,
    select_nil,
    select_non_nil,
    theta_select,
)
from repro.kernel.types import AtomType


def make(values, hseqbase=0, atom=AtomType.INT):
    return bat_from_values(atom, values, hseqbase=hseqbase)


class TestRangeSelect:
    def test_inclusive_range(self):
        b = make([1, 5, 10, 15])
        assert range_select(b, 5, 10).tolist() == [1, 2]

    def test_exclusive_bounds(self):
        b = make([1, 5, 10, 15])
        out = range_select(b, 5, 10, low_inclusive=False, high_inclusive=False)
        assert out.tolist() == []

    def test_unbounded_low(self):
        b = make([1, 5, 10])
        assert range_select(b, None, 5).tolist() == [0, 1]

    def test_unbounded_high(self):
        b = make([1, 5, 10])
        assert range_select(b, 5, None).tolist() == [1, 2]

    def test_unbounded_both_matches_all_non_null(self):
        b = make([1, None, 3])
        assert range_select(b, None, None).tolist() == [0, 2]

    def test_anti_range(self):
        b = make([1, 5, 10, 15])
        assert range_select(b, 5, 10, anti=True).tolist() == [0, 3]

    def test_anti_never_matches_null(self):
        b = make([1, None, 20])
        assert range_select(b, 5, 10, anti=True).tolist() == [0, 2]

    def test_nulls_never_qualify(self):
        b = make([None, 7, None])
        assert range_select(b, 0, 100).tolist() == [1]

    def test_respects_hseqbase(self):
        b = make([1, 5, 10], hseqbase=100)
        assert range_select(b, 5, 10).tolist() == [101, 102]

    def test_with_candidates(self):
        b = make([1, 5, 10, 15])
        cands = np.array([0, 3], dtype=np.int64)
        assert range_select(b, 0, 100, candidates=cands).tolist() == [0, 3]

    def test_string_range(self):
        b = make(["apple", "pear", None, "fig"], atom=AtomType.STR)
        assert range_select(b, "b", "z").tolist() == [1, 3]

    def test_dbl_range(self):
        b = make([0.5, 1.5, 2.5], atom=AtomType.DBL)
        assert range_select(b, 1.0, 2.0).tolist() == [1]


class TestThetaSelect:
    def test_all_operators(self):
        b = make([1, 2, 3])
        assert theta_select(b, "==", 2).tolist() == [1]
        assert theta_select(b, "!=", 2).tolist() == [0, 2]
        assert theta_select(b, "<", 2).tolist() == [0]
        assert theta_select(b, "<=", 2).tolist() == [0, 1]
        assert theta_select(b, ">", 2).tolist() == [2]
        assert theta_select(b, ">=", 2).tolist() == [1, 2]

    def test_sql_spellings(self):
        b = make([1, 2])
        assert theta_select(b, "=", 1).tolist() == [0]
        assert theta_select(b, "<>", 1).tolist() == [1]

    def test_unknown_operator(self):
        with pytest.raises(KernelError):
            theta_select(make([1]), "~", 1)

    def test_compare_against_null_is_empty(self):
        b = make([1, 2])
        assert theta_select(b, "==", None).tolist() == []

    def test_nulls_never_qualify(self):
        b = make([None, 5])
        assert theta_select(b, "!=", 99).tolist() == [1]

    def test_string_equality(self):
        b = make(["a", "b", None], atom=AtomType.STR)
        assert theta_select(b, "==", "b").tolist() == [1]

    def test_with_candidates(self):
        b = make([5, 5, 5])
        cands = np.array([1], dtype=np.int64)
        assert theta_select(b, "==", 5, candidates=cands).tolist() == [1]


class TestNilSelect:
    def test_select_nil(self):
        b = make([1, None, 3, None])
        assert select_nil(b).tolist() == [1, 3]

    def test_select_non_nil(self):
        b = make([1, None, 3])
        assert select_non_nil(b).tolist() == [0, 2]

    def test_nil_partition_is_complete(self):
        b = make([1, None, 3, None, 5], hseqbase=7)
        nils = set(select_nil(b).tolist())
        non = set(select_non_nil(b).tolist())
        assert nils | non == set(b.head_oids().tolist())
        assert not (nils & non)


class TestProperties:
    @given(
        st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=120),
        st.integers(-60, 60),
        st.integers(-60, 60),
    )
    def test_range_select_matches_python(self, values, lo, hi):
        b = make(values, atom=AtomType.LNG)
        got = set(range_select(b, lo, hi).tolist())
        expect = {
            i for i, v in enumerate(values) if v is not None and lo <= v <= hi
        }
        assert got == expect

    @given(
        st.lists(st.one_of(st.integers(-50, 50), st.none()), max_size=120),
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        st.integers(-60, 60),
    )
    def test_theta_select_matches_python(self, values, op, pivot):
        import operator as _op

        fns = {
            "==": _op.eq,
            "!=": _op.ne,
            "<": _op.lt,
            "<=": _op.le,
            ">": _op.gt,
            ">=": _op.ge,
        }
        b = make(values, atom=AtomType.LNG)
        got = set(theta_select(b, op, pivot).tolist())
        expect = {
            i
            for i, v in enumerate(values)
            if v is not None and fns[op](v, pivot)
        }
        assert got == expect

    @given(st.lists(st.one_of(st.integers(-9, 9), st.none()), max_size=80))
    def test_anti_is_complement_within_non_null(self, values):
        b = make(values, atom=AtomType.LNG)
        pos = set(range_select(b, -3, 3).tolist())
        anti = set(range_select(b, -3, 3, anti=True).tolist())
        non_null = set(select_non_nil(b).tolist())
        assert pos | anti == non_null
        assert not (pos & anti)
