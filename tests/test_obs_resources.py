"""Per-query resource accounting: CPU, memory, queue-wait, budgets.

The attribution contract under test:

* **CPU nesting** — thread-CPU is captured at three boundaries that
  bracket each other (``opcode <= plan <= firing``), and the per-opcode
  fold recovers >= 90% of the plan-boundary CPU on a realistic
  batch-heavy pipeline (the accuracy contract from the module docs);
* **memory** — ``nbytes()`` is exact for fixed-width columns
  (``count * itemsize``), baskets include their hidden columns, and a
  query's footprint splits shared input baskets fairly across readers;
* **queue-wait** — charged per tuple exactly once, at first observation
  by the consuming factory;
* **sys.resources** — one row per query per sample while active,
  silent when quiescent, and meta-queryable with ordinary SQL;
* **budgets** — validated at construction, evaluated per sampler tick,
  firing exactly once per breach window into ``sys.events``.
"""

import pytest

from repro.core.clock import LogicalClock
from repro.core.engine import DataCell
from repro.errors import DataCellError, ObservabilityError
from repro.kernel.bat import BAT
from repro.kernel.types import AtomType
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import (
    OBJECT_ELEMENT_BYTES,
    ResourceBudget,
    estimate_nbytes,
)
from repro.obs.sysstreams import (
    SYS_RESOURCES,
    SystemStreamsConfig,
    tail_rows,
)

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell(**kwargs):
    cell = DataCell(metrics=MetricsRegistry(), **kwargs)
    cell.execute("create basket sensors (sensor int, temp double)")
    return cell


def build_monitored(interval=1.0, retention=512, **kwargs):
    clock = LogicalClock()
    cell = DataCell(
        clock=clock,
        metrics=MetricsRegistry(),
        system_streams=SystemStreamsConfig(
            interval=interval, retention=retention
        ),
        **kwargs,
    )
    cell.execute("create basket sensors (sensor int, temp double)")
    return cell, clock


def tick(cell, clock, n=1):
    for _ in range(n):
        clock.advance(1.0)
        cell.run_until_quiescent()


class TestNbytesContract:
    def test_fixed_width_bat_is_exact(self):
        bat = BAT(AtomType.LNG)
        bat.append_many([1, 2, 3])
        assert bat.nbytes() == 3 * 8
        bat = BAT(AtomType.INT)
        bat.append_many([1, 2, 3, 4])
        assert bat.nbytes() == 4 * 4

    def test_object_dtype_uses_flat_estimate(self):
        bat = BAT(AtomType.STR)
        bat.append_many(["a", "bb"])
        assert bat.nbytes() == 2 * OBJECT_ELEMENT_BYTES

    def test_spare_capacity_not_charged(self):
        bat = BAT(AtomType.LNG, capacity=1024)
        bat.append_many([1])
        assert bat.nbytes() == 8

    def test_basket_counts_hidden_columns(self):
        cell = build_cell()
        basket = cell.basket("sensors")
        cell.insert("sensors", [(1, 1.0), (2, 2.0)])
        # sensor int32 (4) + temp float64 (8) + implicit dc_time (8) +
        # _seq int64 (8) + _mono float64 (8, stamping on with a live
        # registry) + _tokens int64 (8, only when a tracer is attached)
        width = 4 + 8 + 8 + 8 + 8
        if basket._token_tracking:
            width += 8
        assert basket.row_nbytes() == width
        assert basket.nbytes() == 2 * basket.row_nbytes()

    def test_estimate_nbytes_walks_plain_state(self):
        assert estimate_nbytes(None) == 0
        assert estimate_nbytes(3) == 8
        assert estimate_nbytes("abcd") == 4
        assert estimate_nbytes({1: [1.0, 2.0]}) == 8 + 16
        assert estimate_nbytes((1, 2, 3)) == 24


class TestAccounts:
    def test_bound_on_submit_unbound_on_remove(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ, tenant="team-a")
        account = cell.resources.account(query.name)
        assert account is not None
        assert account.tenant == "team-a"
        assert account.output_basket is query.output_basket
        cell.remove_continuous(query)
        assert cell.resources.account(query.name) is None

    def test_flow_counters_charge_fresh_tuples_once(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(i, 45.0) for i in range(10)])
        cell.run_until_quiescent()
        cell.insert("sensors", [(i, 1.0) for i in range(5)])
        cell.run_until_quiescent()
        account = cell.resources.account(query.name)
        assert account.rows_in == 15
        assert account.rows_out == 10  # only the hot tuples pass
        assert account.bytes_in == 15 * cell.basket("sensors").row_nbytes()
        assert account.bytes_out > 0
        assert account.queue_wait_tuples == 15
        assert account.queue_wait_seconds > 0
        assert query.results_delivered == 10

    def test_cpu_boundaries_nest(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        for _ in range(5):
            cell.insert("sensors", [(i, 45.0) for i in range(100)])
            cell.run_until_quiescent()
        account = cell.resources.account(query.name)
        assert account.firings > 0
        assert account.activations == 5
        assert 0 < account.opcode_cpu_seconds
        assert account.plan_cpu_seconds <= account.cpu_seconds
        assert account.opcode_cpu # at least one opcode attributed

    def test_attribution_recovers_90_percent_of_firing_cpu(self):
        # The accuracy contract: on a Figure-1-style pipeline, the
        # per-bucket CPU breakdown (real MAL opcodes plus the synthetic
        # engine.factory / engine.emitter residual buckets) sums to at
        # least 90% of the scheduler-measured thread CPU, and never
        # exceeds it by more than clock noise.
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        for _ in range(10):
            cell.insert(
                "sensors", [(i, float(i % 90)) for i in range(2000)]
            )
            cell.run_until_quiescent()
        account = cell.resources.account(query.name)
        assert account.rows_in == 20_000
        assert account.plan_cpu_seconds > 0
        attributed = sum(account.opcode_cpu.values())
        ratio = attributed / account.cpu_seconds
        assert ratio >= 0.9, (
            f"breakdown recovered only {ratio:.1%} of firing-boundary CPU"
        )
        assert attributed <= account.cpu_seconds * 1.05
        # real MAL opcodes are measured strictly, inside the plan boundary
        assert "algebra.thetaselect" in account.opcode_cpu
        assert account.opcode_cpu_seconds <= account.plan_cpu_seconds * 1.05
        assert account.plan_cpu_seconds <= account.cpu_seconds * 1.05
        # the synthetic buckets make the breakdown exhaustive
        assert "engine.factory" in account.opcode_cpu
        assert "engine.emitter" in account.opcode_cpu

    def test_one_shot_queries_are_not_attributed(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        before = cell.resources.account(query.name).opcode_cpu_seconds
        cell.query("select sensors.sensor from sensors")
        assert cell.resources.account(query.name).opcode_cpu_seconds \
            == before

    def test_input_basket_shared_fairly(self):
        cell = build_cell()
        q1 = cell.submit_continuous(CQ)
        q2 = cell.submit_continuous(
            "select s.sensor from "
            "[select * from sensors where sensors.temp < 10.0] as s"
        )
        assert cell.resources.input_shares() == {"sensors": 2}
        cell.insert("sensors", [(i, 15.0) for i in range(8)])
        stats = cell.resources.stats()
        sensors = cell.basket("sensors")
        share = int(sensors.nbytes()) // 2
        for name in (q1.name, q2.name):
            assert stats["queries"][name]["memory_bytes"] >= share
        assert stats["engine"]["memory_bytes"] >= int(sensors.nbytes())
        assert stats["engine"]["accounts"] == 2

    def test_disabled_accounting_is_dark(self):
        cell = build_cell(resources=False)
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        assert not cell.resources.enabled
        assert cell.resources.account(query.name) is None
        assert "resources" not in cell.stats()
        assert "disabled" in cell.top()
        assert query.results_delivered == 1  # accounting never gates flow
        with pytest.raises(DataCellError):
            cell.set_budget("cap", query=query.name, cpu_delta=1.0)


class TestTop:
    def test_ranked_table(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        idle = cell.submit_continuous(
            "select s.sensor from "
            "[select * from sensors where sensors.temp > 1e9] as s",
            name="idle",
        )
        cell.insert("sensors", [(i, 45.0) for i in range(50)])
        cell.run_until_quiescent()
        table = cell.top()
        assert "Top queries by CPU" in table
        assert query.name in table
        assert idle.name in table  # zero-emission queries still listed
        assert len(cell.resources.top_rows(1)) == 1
        # the busy query ranks first
        assert cell.resources.top_rows(2)[0][0] == query.name


class TestSysResourcesStream:
    def test_sampled_rows_and_deltas(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(i, 45.0) for i in range(4)])
        tick(cell, clock)
        names, rows = tail_rows(cell.basket(SYS_RESOURCES))
        mine = [r for r in rows if r[names.index("query")] == query.name]
        assert len(mine) == 1
        row = dict(zip(names, mine[0]))
        assert row["tenant"] == "default"
        assert row["rows_in"] == 4
        assert row["rows_in_delta"] == 4  # first sample: delta == total
        assert row["rows_out"] == 4
        assert row["cpu_seconds"] > 0
        assert row["cpu_delta"] > 0
        assert row["memory_bytes"] >= 0
        assert row["queue_wait_seconds"] > 0

    def test_quiescent_queries_sampled_once(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(1, 45.0)])
        tick(cell, clock)
        names, rows = tail_rows(cell.basket(SYS_RESOURCES))
        count = lambda: sum(  # noqa: E731
            1 for r in tail_rows(cell.basket(SYS_RESOURCES))[1]
            if r[0] == query.name
        )
        first = count()
        tick(cell, clock, 3)  # nothing moves: no new rows for the query
        assert count() == first

    def test_meta_queryable_with_continuous_sql(self):
        cell, clock = build_monitored()
        cell.submit_continuous(CQ)
        meta = cell.submit_continuous(
            "select r.query, r.rows_in_delta from "
            "[select * from sys.resources where rows_in_delta > 0] as r",
            name="meta",
        )
        cell.insert("sensors", [(i, 45.0) for i in range(3)])
        tick(cell, clock, 2)
        assert meta.results_delivered >= 1

    def test_meta_queryable_one_shot(self):
        # separate cell: a continuous meta-query would consume the
        # sys.resources rows before the one-shot select could see them
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(i, 45.0) for i in range(3)])
        tick(cell, clock)
        rows = cell.query(
            "select query from sys.resources where rows_in_delta > 0"
        )
        assert (query.name,) in rows


class TestBudgets:
    def test_scope_and_cap_validation(self):
        with pytest.raises(ObservabilityError):
            ResourceBudget("b", query="q", tenant="t", cpu_delta=1.0)
        with pytest.raises(ObservabilityError):
            ResourceBudget("b", cpu_delta=1.0)
        with pytest.raises(ObservabilityError):
            ResourceBudget("b", query="q")

    def test_duplicate_budget_rejected(self):
        cell = build_cell()
        cell.set_budget("cap", query="q1", cpu_delta=1.0)
        with pytest.raises(ObservabilityError):
            cell.set_budget("cap", query="q1", cpu_delta=1.0)
        cell.remove_budget("cap")
        cell.set_budget("cap", query="q1", cpu_delta=1.0)

    def test_fires_once_per_breach_window(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        fired = []
        budget = cell.set_budget(
            "cpu-cap",
            query=query.name,
            cpu_delta=0.0,  # any CPU spent within a sample breaches
            callback=lambda b, record: fired.append(record),
        )
        # window 1: sustained breach alerts exactly once
        cell.insert("sensors", [(1, 45.0)])
        tick(cell, clock)
        assert budget.breaches == 1
        cell.insert("sensors", [(2, 45.0)])
        tick(cell, clock)
        assert budget.breaches == 1  # consecutive breached tick: silent
        # a clean tick closes the window
        tick(cell, clock)
        # window 2: a fresh breach alerts again
        cell.insert("sensors", [(3, 45.0)])
        tick(cell, clock)
        assert budget.breaches == 2
        assert len(fired) == 2
        assert fired[0]["exceeded"][0]["dimension"] == "cpu_delta"
        assert cell.metrics.value(
            "datacell_budget_breaches_total", ("cpu-cap",)
        ) == 2

    def test_breach_lands_in_sys_events(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        cell.set_budget("cpu-cap", query=query.name, cpu_delta=0.0)
        cell.insert("sensors", [(1, 45.0)])
        tick(cell, clock)
        events = cell.query(
            "select kind, component from sys.events "
            "where kind = 'budget_breach'"
        )
        assert ("budget_breach", "cpu-cap") in events

    def test_alert_rule_fires_on_breach_event(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        cell.set_budget("cpu-cap", query=query.name, cpu_delta=0.0)
        rule = cell.add_alert(
            "quota",
            "select e.component from "
            "[select * from sys.events where kind = 'budget_breach'] as e",
        )
        cell.insert("sensors", [(1, 45.0)])
        tick(cell, clock, 2)
        assert rule.firings == 1
        assert rule.last_rows[0][0] == "cpu-cap"

    def test_tenant_scope_aggregates_queries(self):
        cell, clock = build_monitored()
        cell.submit_continuous(CQ, tenant="team-a")
        cell.submit_continuous(
            "select s.sensor from "
            "[select * from sensors where sensors.temp > 0.0] as s",
            tenant="team-a",
        )
        budget = cell.set_budget(
            "team-cpu", tenant="team-a", cpu_delta=0.0
        )
        cell.insert("sensors", [(i, 45.0) for i in range(100)])
        tick(cell, clock)
        assert budget.breaches == 1
        assert budget.last_breach["scope"] == "tenant:team-a"

    def test_within_budget_never_fires(self):
        cell, clock = build_monitored()
        query = cell.submit_continuous(CQ)
        budget = cell.set_budget(
            "roomy", query=query.name, cpu_delta=1e9
        )
        cell.insert("sensors", [(1, 45.0)])
        tick(cell, clock, 3)
        assert budget.breaches == 0


class TestFlightRecorderSnapshot:
    def test_snapshot_carries_resource_accounts(self):
        cell = build_cell()
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder(cell, window=3)
        doc = recorder.snapshot()
        assert query.name in doc["resources"]["queries"]
        assert doc["resources"]["engine"]["accounts"] == 1
