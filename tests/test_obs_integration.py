"""End-to-end observability: stats(), dashboard, latency, shed controller."""

import json
import os
import time


from repro import DataCell, MetricsRegistry
from repro.bench.reporting import record_result
from repro.testing import current_seed
from repro.core.basket import Basket
from repro.core.shedding import LoadShedController
from repro.kernel.types import AtomType

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell():
    cell = DataCell()
    cell.execute("create basket sensors (sensor int, temp double)")
    query = cell.submit_continuous(CQ)
    return cell, query


class TestStatsShape:
    def test_top_level_sections(self):
        cell, _ = build_cell()
        stats = cell.stats()
        assert set(stats) == {
            "scheduler", "baskets", "queries", "mal", "spans", "resources",
        }

    def test_scheduler_section(self):
        cell, _ = build_cell()
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        sched = cell.stats()["scheduler"]
        assert sched["firings"] >= 2  # factory + emitter
        assert sched["iterations"] >= 1
        q1 = sched["transitions"]["q1"]
        assert q1["firings"] == 1
        assert q1["activation_seconds"]["count"] == 1
        assert q1["activation_seconds"]["p95"] > 0

    def test_idle_polls_counted(self):
        cell, _ = build_cell()
        cell.step()  # nothing enabled: every transition idles
        transitions = cell.stats()["scheduler"]["transitions"]
        assert all(t["idle_polls"] >= 1 for t in transitions.values())

    def test_basket_section(self):
        cell, _ = build_cell()
        cell.insert("sensors", [(1, 45.0), (2, 20.0)])
        cell.run_until_quiescent()
        baskets = cell.stats()["baskets"]
        assert baskets["sensors"]["inserted"] == 2
        # the compiled plan consumes qualifying tuples only: one matched,
        # the other stays buffered
        assert baskets["sensors"]["consumed"] == 1
        assert baskets["sensors"]["high_water"] == 2
        assert baskets["sensors"]["depth"] == 1
        assert baskets["q1_out"]["inserted"] == 1  # only temp > 30 passed

    def test_mal_section(self):
        cell, _ = build_cell()
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        mal = cell.stats()["mal"]
        assert "algebra.thetaselect" in mal
        assert mal["algebra.thetaselect"]["calls"] >= 1
        assert mal["algebra.thetaselect"]["seconds"] > 0

    def test_disabled_metrics_stats_still_works(self):
        cell = DataCell(metrics=MetricsRegistry(enabled=False))
        cell.execute("create basket sensors (sensor int, temp double)")
        query = cell.submit_continuous(CQ)
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        stats = cell.stats()
        # registry is a black hole but plain attributes keep counting
        assert stats["scheduler"]["firings"] >= 2
        assert stats["baskets"]["sensors"]["inserted"] == 1
        assert stats["queries"]["q1"]["delivered"] == 1
        assert stats["mal"] == {}
        assert query.fetch() == [(1, 45.0)]


class TestEndToEndLatency:
    def test_latency_nonzero_sync(self):
        cell, query = build_cell()
        cell.insert("sensors", [(1, 45.0), (2, 99.0)])
        cell.run_until_quiescent()
        latency = cell.stats()["queries"]["q1"]["latency"]
        assert latency["count"] == 2
        assert latency["min"] > 0
        assert latency["p50"] > 0
        assert query.results_delivered == 2

    def test_latency_nonzero_threaded(self):
        cell, query = build_cell()
        cell.start()
        try:
            cell.insert("sensors", [(1, 45.0)])
            deadline = time.monotonic() + 5.0
            while (
                query.results_delivered < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        finally:
            cell.stop()
        assert query.results_delivered == 1
        latency = cell.stats()["queries"]["q1"]["latency"]
        assert latency["count"] == 1
        assert latency["min"] > 0

    def test_latency_survives_replication(self):
        # separate-baskets strategy: stream -> replicator -> private ->
        # factory -> out -> emitter; the origin stamp must survive the
        # replication hop or latency collapses to the last-hop time only.
        from repro.core.emitter import CollectingClient, Emitter
        from repro.core.scheduler import Scheduler
        from repro.core.strategies import RangeQuery, build_separate_pipeline

        metrics = MetricsRegistry()
        stream = Basket("s", [("v", AtomType.INT)], metrics=metrics)
        net = build_separate_pipeline(stream, [RangeQuery("q", "v", 0, 100)])
        out = net.output_baskets["q"]
        emitter = Emitter("e", out, metrics=metrics)
        emitter.subscribe(CollectingClient())
        scheduler = Scheduler(metrics=metrics)
        for t in net.all_transitions() + [emitter]:
            scheduler.register(t)
        stream.insert_rows([(5,)])
        time.sleep(0.02)  # tuple ages in the stream basket pre-replication
        scheduler.run_until_quiescent()
        snap = metrics.histogram_snapshot(
            "datacell_query_latency_seconds", (out.name,)
        )
        assert snap["count"] == 1
        assert snap["min"] >= 0.02  # includes time before the replicator


class TestDashboardAndExposition:
    def test_render_dashboard(self):
        cell, _ = build_cell()
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        text = cell.render_dashboard()
        assert "Transitions" in text
        assert "Baskets" in text
        assert "insert → emit latency" in text
        assert "MAL opcodes" in text
        assert "q1" in text and "sensors" in text

    def test_render_dashboard_on_fresh_cell(self):
        cell = DataCell()
        text = cell.render_dashboard()  # no queries, no data: still renders
        assert "scheduler:" in text

    def test_prometheus_text(self):
        cell, _ = build_cell()
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        text = cell.prometheus_text()
        assert 'datacell_transition_firings_total{transition="q1"} 1' in text
        assert 'datacell_basket_inserted_total{basket="sensors"} 1' in text
        assert 'datacell_query_latency_seconds_bucket' in text
        assert 'le="+Inf"' in text

    def test_cells_have_private_registries(self):
        a, _ = build_cell()
        b, _ = build_cell()
        a.insert("sensors", [(1, 45.0)])
        a.run_until_quiescent()
        assert a.stats()["scheduler"]["firings"] >= 2
        assert b.stats()["scheduler"]["firings"] == 0


class TestShedControllerReadsRegistry:
    def test_depth_read_from_gauges(self):
        metrics = MetricsRegistry()
        b = Basket("b", [("v", AtomType.INT)], metrics=metrics)
        b.insert_rows([(i,) for i in range(50)])
        controller = LoadShedController([b], budget=10, metrics=metrics)
        assert controller.buffered() == 50
        dropped = controller.tick()
        assert dropped == 40
        assert controller.engaged
        # control signals published back into the registry
        assert metrics.value("datacell_shed_dropped_total", ("shed",)) == 40
        assert metrics.value("datacell_shed_engaged", ("shed",)) == 1
        assert metrics.value("datacell_basket_depth", ("b",)) == 10

    def test_disabled_registry_falls_back_to_live_count(self):
        metrics = MetricsRegistry(enabled=False)
        b = Basket("b", [("v", AtomType.INT)], metrics=metrics)
        b.insert_rows([(i,) for i in range(30)])
        controller = LoadShedController([b], budget=10, metrics=metrics)
        assert controller.buffered() == 30  # gauge absent; uses basket.count
        assert controller.tick() == 20


class TestRecordResultAtomic:
    def test_roundtrip_and_merge(self, tmp_path):
        target = str(tmp_path / "results.json")
        record_result("exp1", {"x": 1}, path=target)
        record_result("exp2", {"y": 2}, path=target)
        with open(target) as handle:
            data = json.load(handle)
        seed = current_seed()
        assert data == {
            "exp1": {"x": 1, "seed": seed},
            "exp2": {"y": 2, "seed": seed},
        }

    def test_no_temp_file_left_behind(self, tmp_path):
        target = str(tmp_path / "results.json")
        record_result("exp", {"x": 1}, path=target)
        leftovers = [
            f for f in os.listdir(tmp_path) if f != "results.json"
        ]
        assert leftovers == []

    def test_corrupt_existing_file_recovered(self, tmp_path):
        target = str(tmp_path / "results.json")
        with open(target, "w") as handle:
            handle.write("{not json")
        record_result("exp", {"x": 1}, path=target)
        with open(target) as handle:
            assert json.load(handle) == {
                "exp": {"x": 1, "seed": current_seed()}
            }
