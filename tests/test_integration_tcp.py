"""Full-periphery integration: TCP in → DataCell → TCP out.

The paper's deployment picture: adapters at the edges speak a textual
flat-tuple protocol over TCP, every component runs as its own thread, and
data streams through the engine.  This test runs that picture end to end
on localhost.

Hermeticity: every wait is bounded and overruns *fail* rather than hang
or fall through to a confusing assertion; ``cell.stop()`` returns the
names of any scheduler threads that outlived the bounded join, and the
autouse fixture in ``conftest.py`` double-checks nothing engine-owned
survives the test.
"""

import socket
import time

import pytest

from repro import DataCell, LogicalClock
from repro.adapters.tcpio import TcpEgressClient, TcpIngressServer


def test_tcp_roundtrip_through_threaded_engine():
    # --- downstream consumer: a second TCP server collecting results ---
    sink_server = TcpIngressServer()
    sink_server.start()

    # --- the engine, fed by a TCP ingress ---
    ingress = TcpIngressServer()
    ingress.start()

    cell = DataCell(clock=LogicalClock())
    cell.execute("create basket readings (sensor int, temp double)")
    cell.add_receptor("tap", ["readings"], channel=ingress.channel)
    query = cell.submit_continuous(
        "select r.sensor, r.temp from "
        "[select * from readings where readings.temp > 30.0] as r"
    )
    egress = TcpEgressClient(*sink_server.address)
    query.subscribe(egress)

    cell.start()
    timed_out = False
    try:
        with socket.create_connection(ingress.address, timeout=5) as sock:
            sock.sendall(b"1,25.0\n2,35.5\n3,41.0\n4,29.9\n")
        deadline = time.monotonic() + 20
        while sink_server.channel.pending() < 2:
            if time.monotonic() > deadline:
                timed_out = True
                break
            time.sleep(0.01)
    finally:
        leaked = cell.stop(timeout=5.0)
        egress.close()
        ingress.stop()
        sink_server.stop()

    if leaked:
        pytest.fail(f"scheduler threads survived bounded join: {leaked}")
    if timed_out:
        pytest.fail(
            "timed out waiting for results at the TCP sink "
            f"(pending={sink_server.channel.pending()}, "
            f"delivered={query.results_delivered})"
        )
    delivered = sorted(sink_server.channel.poll())
    assert delivered == ["2,35.5", "3,41.0"]
    assert query.results_delivered == 2
