"""Model-based (stateful) property tests.

Hypothesis drives random operation sequences against a basket (and its
shared-reader protocol), checking after every step that the real
implementation agrees with a trivially correct python model.  This is the
strongest guard on the DataCell's central data structure: consumption,
cursors, GC, and shedding interact in ways unit tests undersample.
"""

import numpy as np
from hypothesis import seed, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.kernel.types import AtomType
from repro.testing import current_seed


@seed(current_seed())
class BasketModel(RuleBasedStateMachine):
    """Random ingest/consume/read sequences vs a list-of-rows model."""

    def __init__(self):
        super().__init__()
        self.clock = LogicalClock()
        self.basket = Basket("m", [("v", AtomType.INT)], self.clock)
        # model: list of (seq, value); reader cursors
        self.model = []
        self.next_seq = 0
        self.cursors = {}
        self.reader_counter = 0

    # ------------------------------------------------------------------
    @rule(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
    def insert(self, values):
        self.basket.insert_rows([(v,) for v in values])
        for v in values:
            self.model.append((self.next_seq, v))
            self.next_seq += 1

    @rule()
    def consume_all(self):
        removed = self.basket.consume_all()
        assert removed == len(self.model)
        self.model = []

    @rule(data=st.data())
    def consume_some(self, data):
        if not self.model:
            return
        chosen = data.draw(
            st.lists(
                st.sampled_from([seq for seq, _ in self.model]),
                unique=True,
                max_size=5,
            )
        )
        removed = self.basket.consume_seqs(np.asarray(chosen, dtype=np.int64))
        assert removed == len(chosen)
        dead = set(chosen)
        self.model = [(s, v) for s, v in self.model if s not in dead]

    @rule()
    def add_reader(self):
        name = f"r{self.reader_counter}"
        self.reader_counter += 1
        self.basket.register_reader(name)
        first = self.model[0][0] if self.model else self.next_seq
        self.cursors[name] = first - 1

    @rule(data=st.data())
    def reader_reads_and_advances(self, data):
        if not self.cursors:
            return
        name = data.draw(st.sampled_from(sorted(self.cursors)))
        snap = self.basket.read_new(name)
        expected = [
            (s, v) for s, v in self.model if s > self.cursors[name]
        ]
        assert snap.count == len(expected)
        assert [int(s) for s in snap.seqs] == [s for s, _ in expected]
        assert snap.column("v").python_list() == [v for _, v in expected]
        if snap.count:
            upto = int(snap.seqs.max())
            self.basket.advance_reader(name, upto)
            self.cursors[name] = max(self.cursors[name], upto)

    @rule()
    def gc(self):
        removed = self.basket.gc_shared()
        if self.cursors:
            low = min(self.cursors.values())
            survivors = [(s, v) for s, v in self.model if s > low]
            assert removed == len(self.model) - len(survivors)
            self.model = survivors
        else:
            assert removed == 0

    @rule(data=st.data())
    def drop_reader(self, data):
        if not self.cursors:
            return
        name = data.draw(st.sampled_from(sorted(self.cursors)))
        self.basket.unregister_reader(name)
        del self.cursors[name]
        # unregistering GCs at the new low-water mark
        if self.cursors:
            low = min(self.cursors.values())
            self.model = [(s, v) for s, v in self.model if s > low]
        # with no readers left, nothing is removed

    # ------------------------------------------------------------------
    @invariant()
    def counts_agree(self):
        assert self.basket.count == len(self.model)

    @invariant()
    def contents_agree(self):
        got = [r[0] for r in self.basket.rows()]
        assert got == [v for _, v in self.model]

    @invariant()
    def conservation(self):
        assert (
            self.basket.total_in
            == self.basket.count
            + self.basket.total_out
            + self.basket.total_shed
        )

    @invariant()
    def alignment_holds(self):
        self.basket.check_alignment()


BasketModelTest = BasketModel.TestCase
BasketModelTest.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


@seed(current_seed())
class SchedulerNetworkModel(RuleBasedStateMachine):
    """A random chain network never loses or duplicates tuples."""

    def __init__(self):
        super().__init__()
        from repro.core.factory import (
            CallablePlan,
            ConsumeMode,
            Factory,
            InputBinding,
        )
        from repro.core.scheduler import Scheduler
        from repro.kernel.mal import ResultSet

        self.clock = LogicalClock()
        self.stages = [
            Basket(f"s{i}", [("v", AtomType.INT)], self.clock)
            for i in range(4)
        ]
        self.scheduler = Scheduler()
        for i in range(3):
            src, dst = self.stages[i], self.stages[i + 1]

            def make_plan(src_name, dst_name):
                def plan(snaps):
                    snap = snaps[src_name]
                    if snap.count == 0:
                        return None
                    return {
                        dst_name: ResultSet(
                            ["v"], [snap.column("v")]
                        )
                    }

                return plan

            self.scheduler.register(
                Factory(
                    f"f{i}",
                    CallablePlan(make_plan(src.name, dst.name)),
                    [InputBinding(src, ConsumeMode.ALL)],
                    [dst],
                )
            )
        self.pushed = 0

    @rule(values=st.lists(st.integers(0, 100), min_size=1, max_size=10))
    def push(self, values):
        self.stages[0].insert_rows([(v,) for v in values])
        self.pushed += len(values)

    @rule()
    def drain(self):
        self.scheduler.run_until_quiescent()

    @invariant()
    def no_tuple_lost(self):
        delivered = self.stages[-1].total_in
        buffered_early = sum(s.count for s in self.stages[:-1])
        # every pushed tuple is either still flowing or reached the sink
        assert delivered + buffered_early == self.pushed


SchedulerNetworkTest = SchedulerNetworkModel.TestCase
SchedulerNetworkTest.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
