"""Tests for the SQL→MAL compiler: one-time query execution semantics.

Each test compiles SQL against a small catalog, runs the resulting MAL
program through the interpreter, and checks result rows against hand
computation (and, in the property tests, against a python reference).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindError
from repro.kernel.catalog import Catalog
from repro.kernel.interpreter import MalInterpreter
from repro.kernel.types import AtomType
from repro.sql.compiler import compile_continuous, compile_select
from repro.sql.parser import parse_select


@pytest.fixture
def catalog():
    cat = Catalog()
    trades = cat.create_table(
        "trades",
        [("sym", AtomType.STR), ("price", AtomType.DBL),
         ("qty", AtomType.INT)],
    )
    trades.append_rows(
        [
            ("A", 10.0, 5),
            ("B", 20.0, 3),
            ("A", 12.0, 7),
            ("C", 9.0, 1),
            ("B", 21.0, None),
            ("C", None, 4),
        ]
    )
    syms = cat.create_table(
        "syms", [("sym", AtomType.STR), ("sector", AtomType.STR)]
    )
    syms.append_rows([("A", "tech"), ("B", "energy"), ("D", "metals")])
    return cat


def run(catalog, sql):
    compiled = compile_select(catalog, parse_select(sql))
    return MalInterpreter(catalog).run(compiled.program).rows()


class TestProjectionsAndFilters:
    def test_star(self, catalog):
        rows = run(catalog, "select * from syms")
        assert rows == [("A", "tech"), ("B", "energy"), ("D", "metals")]

    def test_column_order_follows_select_list(self, catalog):
        rows = run(catalog, "select sector, sym from syms limit 1")
        assert rows == [("tech", "A")]

    def test_where_simple(self, catalog):
        rows = run(catalog, "select sym from trades where price > 11")
        assert rows == [("B",), ("A",), ("B",)]

    def test_where_conjunction(self, catalog):
        rows = run(
            catalog,
            "select sym from trades where price > 9 and qty >= 5",
        )
        assert rows == [("A",), ("A",)]

    def test_where_disjunction(self, catalog):
        rows = run(
            catalog,
            "select sym, qty from trades where qty = 1 or qty = 3",
        )
        assert rows == [("B", 3), ("C", 1)]

    def test_between(self, catalog):
        rows = run(
            catalog, "select price from trades where price between 10 and 20"
        )
        assert rows == [(10.0,), (20.0,), (12.0,)]

    def test_in_list(self, catalog):
        rows = run(
            catalog, "select sym from trades where sym in ('A', 'C')"
        )
        assert [r[0] for r in rows] == ["A", "A", "C", "C"]

    def test_not_in_list(self, catalog):
        rows = run(
            catalog, "select sym from trades where sym not in ('A', 'C')"
        )
        assert [r[0] for r in rows] == ["B", "B"]

    def test_is_null(self, catalog):
        rows = run(catalog, "select sym from trades where price is null")
        assert rows == [("C",)]

    def test_is_not_null(self, catalog):
        rows = run(
            catalog,
            "select sym from trades where qty is not null and price is not null",
        )
        assert len(rows) == 4

    def test_null_comparison_never_matches(self, catalog):
        rows = run(catalog, "select sym from trades where price > 0")
        assert len(rows) == 5, "NULL price row excluded"
        rows = run(catalog, "select sym from trades where not (price > 0)")
        assert rows == [], "NOT(NULL) is still not true"

    def test_arithmetic_in_select(self, catalog):
        rows = run(
            catalog,
            "select price * qty as notional from trades where sym = 'A'",
        )
        assert rows == [(50.0,), (84.0,)]

    def test_division_is_double(self, catalog):
        rows = run(catalog, "select qty / 2 from trades where sym = 'A'")
        assert rows == [(2.5,), (3.5,)]

    def test_literal_column(self, catalog):
        rows = run(catalog, "select 42, sym from syms limit 1")
        assert rows == [(42, "A")]

    def test_case_when(self, catalog):
        rows = run(
            catalog,
            "select case when price >= 20 then 'hi' else 'lo' end b, sym "
            "from trades where price is not null order by price",
        )
        assert rows[0] == ("lo", "C")
        assert rows[-1] == ("hi", "B")

    def test_cast(self, catalog):
        rows = run(
            catalog,
            "select cast(price as int) from trades where sym = 'B' "
            "order by price",
        )
        assert rows == [(20,), (21,)]


class TestAggregation:
    def test_scalar_aggregates(self, catalog):
        rows = run(
            catalog,
            "select count(*), count(price), sum(qty), min(price), "
            "max(price), avg(qty) from trades",
        )
        assert rows == [(6, 5, 20, 9.0, 21.0, 4.0)]

    def test_group_by(self, catalog):
        rows = run(
            catalog,
            "select sym, sum(qty) q, count(*) c from trades group by sym "
            "order by sym",
        )
        assert rows == [("A", 12, 2), ("B", 3, 2), ("C", 5, 2)]

    def test_having(self, catalog):
        rows = run(
            catalog,
            "select sym, count(*) c from trades group by sym "
            "having sum(qty) > 4 order by sym",
        )
        assert rows == [("A", 2), ("C", 2)]

    def test_aggregate_arithmetic(self, catalog):
        rows = run(
            catalog,
            "select sym, sum(price) / count(price) m from trades "
            "group by sym order by sym",
        )
        assert rows == [("A", 11.0), ("B", 20.5), ("C", 9.0)]

    def test_group_key_expression(self, catalog):
        rows = run(
            catalog,
            "select qty % 2 as parity, count(*) from trades "
            "where qty is not null group by qty % 2 order by parity",
        )
        assert rows == [(0, 1), (1, 4)]

    def test_bare_column_without_group_rejected(self, catalog):
        with pytest.raises(BindError):
            run(catalog, "select sym, count(*) from trades")

    def test_ungrouped_column_rejected(self, catalog):
        with pytest.raises(BindError):
            run(
                catalog,
                "select qty, count(*) from trades group by sym",
            )

    def test_distinct_aggregate_rejected(self, catalog):
        with pytest.raises(BindError):
            run(catalog, "select count(distinct sym) from trades")

    def test_multi_column_group(self, catalog):
        rows = run(
            catalog,
            "select sym, qty, count(*) from trades where qty is not null "
            "group by sym, qty order by sym, qty",
        )
        assert len(rows) == 5


class TestJoins:
    def test_inner_join(self, catalog):
        rows = run(
            catalog,
            "select t.sym, s.sector from trades t join syms s "
            "on t.sym = s.sym where t.price > 11 order by t.sym",
        )
        assert rows == [("A", "tech"), ("B", "energy"), ("B", "energy")]

    def test_comma_join_with_where(self, catalog):
        rows = run(
            catalog,
            "select t.sym, s.sector from trades t, syms s "
            "where t.sym = s.sym and t.qty = 5",
        )
        assert rows == [("A", "tech")]

    def test_cross_join_count(self, catalog):
        rows = run(
            catalog,
            "select count(*) from trades cross join syms",
        )
        assert rows == [(18,)]

    def test_join_with_residual_condition(self, catalog):
        rows = run(
            catalog,
            "select t.sym from trades t join syms s "
            "on t.sym = s.sym and t.price > 20",
        )
        assert rows == [("B",)]

    def test_unmatched_rows_dropped(self, catalog):
        rows = run(
            catalog,
            "select distinct s.sym from syms s join trades t "
            "on s.sym = t.sym order by s.sym",
        )
        assert rows == [("A",), ("B",), ("C",)] or rows == [("A",), ("B",)]
        # 'D' never trades; 'C' only with NULL price rows still join
        assert ("D",) not in rows

    def test_left_join_rejected_with_message(self, catalog):
        with pytest.raises(BindError):
            run(
                catalog,
                "select s.sym from syms s left join trades t "
                "on s.sym = t.sym",
            )

    def test_ambiguous_column_rejected(self, catalog):
        with pytest.raises(BindError):
            run(
                catalog,
                "select sym from trades t join syms s on t.sym = s.sym",
            )


class TestOrderDistinctLimit:
    def test_order_by(self, catalog):
        rows = run(
            catalog,
            "select price from trades where price is not null order by price",
        )
        assert [r[0] for r in rows] == [9.0, 10.0, 12.0, 20.0, 21.0]

    def test_order_desc(self, catalog):
        rows = run(catalog, "select qty from trades order by qty desc limit 2")
        assert [r[0] for r in rows] == [7, 5]

    def test_multi_key_order(self, catalog):
        rows = run(
            catalog, "select sym, price from trades order by sym, price desc"
        )
        assert rows[0] == ("A", 12.0)
        assert rows[1] == ("A", 10.0)

    def test_order_by_alias(self, catalog):
        rows = run(
            catalog,
            "select price * 2 as dbl from trades "
            "where price is not null order by dbl limit 1",
        )
        assert rows == [(18.0,)]

    def test_distinct(self, catalog):
        rows = run(catalog, "select distinct sym from trades order by sym")
        assert rows == [("A",), ("B",), ("C",)]

    def test_limit_zero(self, catalog):
        assert run(catalog, "select sym from trades limit 0") == []

    def test_subquery(self, catalog):
        rows = run(
            catalog,
            "select big.sym from (select sym, price from trades "
            "where price > 15) as big order by big.sym",
        )
        assert rows == [("B",), ("B",)]


class TestContinuousCompilation:
    def test_requires_basket_expr(self, catalog):
        with pytest.raises(BindError):
            compile_continuous(catalog, parse_select("select * from trades"))

    def test_basket_expr_requires_basket(self, catalog):
        with pytest.raises(BindError):
            compile_continuous(
                catalog,
                parse_select("select * from [select * from trades] as s"),
            )

    def test_one_time_rejects_basket_expr(self, catalog):
        with pytest.raises(BindError):
            compile_select(
                catalog,
                parse_select("select * from [select * from trades] as s"),
            )

    def test_continuous_metadata(self, catalog):
        cat = catalog
        from repro.core.basket import Basket
        from repro.core.clock import LogicalClock

        cat.register(Basket("ticks", [("p", AtomType.DBL)], LogicalClock()))
        compiled = compile_continuous(
            cat,
            parse_select(
                "select s.p from [select * from ticks where ticks.p > 5.0] "
                "as s"
            ),
        )
        assert compiled.is_continuous
        assert compiled.basket_inputs[0].basket == "ticks"
        assert compiled.output_names == ["p"]
        assert compiled.output_atoms == [AtomType.DBL]
        # snapshot columns (incl. dc_time) are program inputs
        assert any("s.p" in i for i in compiled.program.inputs)
        assert any("dc_time" in i for i in compiled.program.inputs)

    def test_basket_expr_group_by_rejected(self, catalog):
        from repro.core.basket import Basket
        from repro.core.clock import LogicalClock

        catalog.register(
            Basket("ticks2", [("p", AtomType.DBL)], LogicalClock())
        )
        with pytest.raises(BindError):
            compile_continuous(
                catalog,
                parse_select(
                    "select * from [select p from ticks2 group by p] as s"
                ),
            )


class TestAgainstPythonReference:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["x", "y", "z"]),
                st.one_of(st.integers(-50, 50), st.none()),
            ),
            max_size=60,
        ),
        st.integers(-40, 40),
    )
    def test_filtered_group_sum(self, rows, pivot):
        cat = Catalog()
        t = cat.create_table(
            "d", [("k", AtomType.STR), ("v", AtomType.INT)]
        )
        t.append_rows(rows)
        got = run(
            cat,
            f"select k, sum(v) s, count(*) c from d where v > {pivot} "
            "group by k order by k",
        )
        expected = {}
        for k, v in rows:
            if v is not None and v > pivot:
                agg = expected.setdefault(k, [0, 0])
                agg[0] += v
                agg[1] += 1
        ref = sorted((k, s, c) for k, (s, c) in expected.items())
        assert got == ref

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(-30, 30), max_size=50),
        st.integers(0, 10),
    )
    def test_order_limit(self, values, limit):
        cat = Catalog()
        t = cat.create_table("d", [("v", AtomType.INT)])
        t.append_rows([(v,) for v in values])
        got = run(cat, f"select v from d order by v limit {limit}")
        assert [r[0] for r in got] == sorted(values)[:limit]
