"""Tests for candidate-list algebra and the remaining MAL primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernel.bat import bat_from_values
from repro.kernel.candidates import (
    all_candidates,
    difference,
    from_mask,
    intersect,
    resolve_positions,
    union,
    validate,
)
from repro.kernel.catalog import Catalog
from repro.kernel.interpreter import MalInterpreter
from repro.kernel.mal import Const, Program, Var
from repro.kernel.types import AtomType


def cands(*values):
    return np.asarray(values, dtype=np.int64)


class TestCandidates:
    def test_all_candidates(self):
        b = bat_from_values(AtomType.INT, [1, 2, 3], hseqbase=10)
        assert all_candidates(b).tolist() == [10, 11, 12]

    def test_resolve_positions(self):
        b = bat_from_values(AtomType.INT, [1, 2, 3], hseqbase=5)
        assert resolve_positions(b, cands(6, 7)).tolist() == [1, 2]
        assert resolve_positions(b, None).tolist() == [0, 1, 2]

    def test_from_mask(self):
        b = bat_from_values(AtomType.INT, [1, 2, 3], hseqbase=4)
        mask = np.array([True, False, True])
        assert from_mask(b, mask).tolist() == [4, 6]

    def test_set_algebra(self):
        a, b = cands(1, 3, 5), cands(3, 4, 5)
        assert intersect(a, b).tolist() == [3, 5]
        assert union(a, b).tolist() == [1, 3, 4, 5]
        assert difference(a, b).tolist() == [1]

    def test_validate_in_range(self):
        b = bat_from_values(AtomType.INT, [1, 2], hseqbase=10)
        validate(b, cands(10, 11))
        validate(b, None)
        validate(b, cands())

    def test_validate_out_of_range(self):
        b = bat_from_values(AtomType.INT, [1, 2], hseqbase=10)
        with pytest.raises(KernelError):
            validate(b, cands(9))
        with pytest.raises(KernelError):
            validate(b, cands(12))

    @given(
        st.lists(st.integers(0, 30), unique=True, max_size=20),
        st.lists(st.integers(0, 30), unique=True, max_size=20),
    )
    def test_set_algebra_matches_python(self, left, right):
        a = np.asarray(sorted(left), dtype=np.int64)
        b = np.asarray(sorted(right), dtype=np.int64)
        assert set(intersect(a, b).tolist()) == set(left) & set(right)
        assert set(union(a, b).tolist()) == set(left) | set(right)
        assert set(difference(a, b).tolist()) == set(left) - set(right)


class TestMalStringMathPrimitives:
    """Exercise the batstr/batmath registry through MAL programs."""

    @pytest.fixture
    def catalog(self):
        cat = Catalog()
        t = cat.create_table(
            "w", [("s", AtomType.STR), ("x", AtomType.DBL)]
        )
        t.append_rows([("Hello", 4.0), (None, -9.0), ("bye", 2.25)])
        return cat

    def run(self, catalog, module, fn, args):
        p = Program()
        col = p.emit("sql", "bind", [Const("w"), Const(args[0])])
        rest = [Const(a) for a in args[1:]]
        p.output = p.emit(module, fn, [Var(col)] + rest)
        return MalInterpreter(catalog).run(p)

    def test_batstr_upper(self, catalog):
        out = self.run(catalog, "batstr", "upper", ["s"])
        assert out.python_list() == ["HELLO", None, "BYE"]

    def test_batstr_length(self, catalog):
        out = self.run(catalog, "batstr", "length", ["s"])
        assert out.python_list() == [5, None, 3]

    def test_batstr_substring(self, catalog):
        out = self.run(catalog, "batstr", "substring", ["s", 2, 2])
        assert out.python_list() == ["el", None, "ye"]

    def test_batstr_like(self, catalog):
        out = self.run(catalog, "batstr", "like", ["s", "%e%", False])
        assert out.python_list() == [True, None, True]

    def test_algebra_likeselect(self, catalog):
        p = Program()
        col = p.emit("sql", "bind", [Const("w"), Const("s")])
        p.output = p.emit(
            "algebra", "likeselect",
            [Var(col), Const(None), Const("b%"), Const(False)],
        )
        out = MalInterpreter(catalog).run(p)
        assert out.tolist() == [2]

    def test_batmath_sqrt(self, catalog):
        out = self.run(catalog, "batmath", "sqrt", ["x"])
        assert out.python_list() == [2.0, None, 1.5]

    def test_batmath_round_digits(self, catalog):
        out = self.run(catalog, "batmath", "round", ["x", 1])
        assert out.python_list() == [4.0, -9.0, 2.2]

    def test_bat_concat(self, catalog):
        p = Program()
        a = p.emit("sql", "bind", [Const("w"), Const("x")])
        p.output = p.emit("bat", "concat", [Var(a), Var(a)])
        out = MalInterpreter(catalog).run(p)
        assert out.count == 6

    def test_cand_primitives(self, catalog):
        p = Program()
        col = p.emit("sql", "bind", [Const("w"), Const("x")])
        lo = p.emit(
            "algebra", "thetaselect",
            [Var(col), Const(None), Const(">"), Const(0.0)],
        )
        hi = p.emit(
            "algebra", "thetaselect",
            [Var(col), Const(None), Const("<"), Const(3.0)],
        )
        p.output = p.emit("cand", "intersect", [Var(lo), Var(hi)])
        out = MalInterpreter(catalog).run(p)
        assert out.tolist() == [2]

    def test_compose(self, catalog):
        p = Program()
        outer = p.emit("language", "pass", [Const(np.array([3, 7, 9]))])
        inner = p.emit("language", "pass", [Const(np.array([0, 2]))])
        p.output = p.emit("algebra", "compose", [Var(outer), Var(inner)])
        out = MalInterpreter(catalog).run(p)
        assert out.tolist() == [3, 9]
