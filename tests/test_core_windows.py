"""Tests for windowed query processing (§3.1).

The load-bearing property: the *incremental* (basic-window) route and the
*re-evaluation* route must produce byte-identical answers, while the
incremental route touches each tuple at most once.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import (
    IncrementalWindowAggregatePlan,
    ReEvalWindowAggregatePlan,
    SlidingWindowJoinPlan,
    WindowMode,
    WindowSpec,
    basic_window_width,
)
from repro.errors import DataCellError
from repro.kernel.types import AtomType

AGGS = ["sum", "count", "count_star", "avg", "min", "max"]


class TestWindowSpec:
    def test_tumbling_default(self):
        spec = WindowSpec(WindowMode.COUNT, 10)
        assert spec.slide == 10 and spec.tumbling

    def test_invalid_sizes(self):
        with pytest.raises(DataCellError):
            WindowSpec(WindowMode.COUNT, 0)
        with pytest.raises(DataCellError):
            WindowSpec(WindowMode.COUNT, 10, -1)

    def test_slide_larger_than_size_rejected(self):
        with pytest.raises(DataCellError):
            WindowSpec(WindowMode.COUNT, 5, 10)

    def test_count_windows_need_integers(self):
        with pytest.raises(DataCellError):
            WindowSpec(WindowMode.COUNT, 2.5)

    def test_window_bounds(self):
        spec = WindowSpec(WindowMode.COUNT, 10, 4)
        assert spec.window_start(0) == 0
        assert spec.window_end(0) == 10
        assert spec.window_start(3) == 12

    def test_basic_window_width_is_gcd(self):
        assert basic_window_width(WindowSpec(WindowMode.COUNT, 12, 8)) == 4
        assert basic_window_width(WindowSpec(WindowMode.COUNT, 10, 10)) == 10
        assert basic_window_width(WindowSpec(WindowMode.TIME, 1.5, 0.5)) == 0.5


def drive_count_window(plan_cls, spec, values, chunks=5, aggs=None,
                       groups=None):
    clock = LogicalClock()
    columns = [("v", AtomType.DBL)]
    if groups is not None:
        columns.append(("g", AtomType.STR))
    inp = Basket("w_in", columns, clock)
    plan = plan_cls(
        "w_in", "v", aggs or AGGS, spec, "w_out",
        group_column="g" if groups is not None else None,
    )
    out = Basket("w_out", plan.output_schema(), clock)
    factory = Factory("w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out])
    batches = np.array_split(np.arange(len(values)), chunks)
    for batch in batches:
        if len(batch) == 0:
            continue
        if groups is not None:
            inp.insert_rows(
                [(values[i], groups[i]) for i in batch]
            )
        else:
            inp.insert_rows([(values[i],) for i in batch])
        clock.advance(0.01)
        if factory.enabled():
            factory.activate()
    rows = [r[:-1] for r in out.rows()]  # strip dc_time
    return rows, plan


class TestCountWindows:
    def test_tumbling_sums(self):
        rows, _ = drive_count_window(
            IncrementalWindowAggregatePlan,
            WindowSpec(WindowMode.COUNT, 4),
            [1.0] * 12,
            aggs=["sum"],
        )
        assert rows == [(0, 4.0), (1, 4.0), (2, 4.0)]

    def test_sliding_window_ids(self):
        rows, _ = drive_count_window(
            IncrementalWindowAggregatePlan,
            WindowSpec(WindowMode.COUNT, 4, 2),
            list(map(float, range(10))),
            aggs=["min", "max"],
        )
        assert rows[0] == (0, 0.0, 3.0)
        assert rows[1] == (1, 2.0, 5.0)
        assert rows[2] == (2, 4.0, 7.0)

    def test_incomplete_window_not_emitted(self):
        rows, _ = drive_count_window(
            ReEvalWindowAggregatePlan,
            WindowSpec(WindowMode.COUNT, 10),
            [1.0] * 9,
            aggs=["count"],
        )
        assert rows == []

    def test_nulls_skipped_by_value_aggs_counted_by_star(self):
        values = [1.0, None, 3.0, None]
        rows, _ = drive_count_window(
            IncrementalWindowAggregatePlan,
            WindowSpec(WindowMode.COUNT, 4),
            values,
            aggs=["count", "count_star", "sum"],
            chunks=1,
        )
        assert rows == [(0, 2, 4, 4.0)]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.one_of(st.floats(-100, 100), st.none()),
            min_size=0, max_size=80,
        ),
        st.integers(1, 12),
        st.data(),
    )
    def test_routes_equivalent(self, values, size, data):
        slide = data.draw(st.integers(1, size))
        chunks = data.draw(st.integers(1, 6))
        spec = WindowSpec(WindowMode.COUNT, size, slide)
        r1, p1 = drive_count_window(
            ReEvalWindowAggregatePlan, spec, values, chunks
        )
        r2, p2 = drive_count_window(
            IncrementalWindowAggregatePlan, spec, values, chunks
        )
        assert len(r1) == len(r2)
        for a, b in zip(r1, r2):
            assert a[0] == b[0]
            for x, y in zip(a[1:], b[1:]):
                if x is None or y is None:
                    assert x == y
                else:
                    assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)

    def test_incremental_touches_each_tuple_once(self):
        values = list(map(float, range(100)))
        spec = WindowSpec(WindowMode.COUNT, 20, 5)
        _, plan = drive_count_window(
            IncrementalWindowAggregatePlan, spec, values, chunks=10
        )
        assert plan.values_processed == len(values)

    def test_reeval_touches_windows_times_size(self):
        values = list(map(float, range(100)))
        spec = WindowSpec(WindowMode.COUNT, 20, 5)
        _, plan = drive_count_window(
            ReEvalWindowAggregatePlan, spec, values, chunks=10
        )
        assert plan.windows_emitted == 17
        assert plan.values_processed == 17 * 20

    def test_tuples_needed_gates_scheduling(self):
        spec = WindowSpec(WindowMode.COUNT, 10, 10)
        clock = LogicalClock()
        inp = Basket("w_in", [("v", AtomType.DBL)], clock)
        plan = IncrementalWindowAggregatePlan(
            "w_in", "v", ["sum"], spec, "w_out"
        )
        assert plan.tuples_needed() == 10
        out = Basket("w_out", plan.output_schema(), clock)
        f = Factory("w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out])
        inp.insert_rows([(1.0,)] * 4)
        f.activate()
        assert plan.tuples_needed() == 6


class TestGroupedWindows:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(-50, 50), min_size=0, max_size=60),
        st.data(),
    )
    def test_grouped_routes_equivalent(self, values, data):
        groups = [
            data.draw(st.sampled_from(["a", "b", "c"]))
            for _ in values
        ]
        spec = WindowSpec(WindowMode.COUNT, 8, 4)
        r1, _ = drive_count_window(
            ReEvalWindowAggregatePlan, spec, values, 4, ["sum", "count"],
            groups,
        )
        r2, _ = drive_count_window(
            IncrementalWindowAggregatePlan, spec, values, 4,
            ["sum", "count"], groups,
        )
        s1, s2 = sorted(r1, key=str), sorted(r2, key=str)
        assert len(s1) == len(s2)
        for a, b in zip(s1, s2):
            assert a[:2] == b[:2]  # window id, group key
            for x, y in zip(a[2:], b[2:]):
                if x is None or y is None:
                    assert x == y
                else:
                    assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)

    def test_grouped_sums(self):
        values = [1.0, 2.0, 10.0, 20.0]
        groups = ["a", "a", "b", "b"]
        rows, _ = drive_count_window(
            IncrementalWindowAggregatePlan,
            WindowSpec(WindowMode.COUNT, 4),
            values, 1, ["sum"], groups,
        )
        assert sorted(rows) == [(0, "a", 3.0), (0, "b", 30.0)]


def drive_time_window(plan_cls, spec, events, aggs=("sum",)):
    """events: list of (timestamp, value)."""
    clock = LogicalClock()
    inp = Basket("w_in", [("v", AtomType.DBL)], clock)
    plan = plan_cls("w_in", "v", list(aggs), spec, "w_out")
    out = Basket("w_out", plan.output_schema(), clock)
    factory = Factory("w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out])
    for stamp, value in events:
        if stamp > clock.now():
            clock.set(stamp)
        inp.insert_rows([(value,)], timestamp=stamp)
        factory.activate()
    return [r[:-1] for r in out.rows()], plan


class TestTimeWindows:
    def test_tumbling_time(self):
        events = [(0.5, 1.0), (1.5, 2.0), (2.5, 4.0), (4.2, 8.0)]
        spec = WindowSpec(WindowMode.TIME, 2.0)
        rows, _ = drive_time_window(
            IncrementalWindowAggregatePlan, spec, events
        )
        # window 0 = [0,2): 1.0; window 1 = [2,4): 4.0 (closed by the 4.2
        # watermark)
        assert rows == [(0, 3.0), (1, 4.0)]

    def test_multi_gap_stream_terminates_and_matches(self):
        """Regression: a bw sealed across a slot gap used to deadlock the
        empty-window synthesis loop (sparse streams with several multi-slot
        gaps).  Both routes must terminate and agree."""
        events = [(0.5, 1.0), (8.5, 2.0), (16.5, 4.0)]
        spec = WindowSpec(WindowMode.TIME, 4.0, 2.0)
        r1, _ = drive_time_window(
            ReEvalWindowAggregatePlan, spec, events, aggs=("sum", "count")
        )
        r2, _ = drive_time_window(
            IncrementalWindowAggregatePlan, spec, events,
            aggs=("sum", "count"),
        )
        assert r1 == r2
        assert r1[0] == (0, 1.0, 1)
        assert (1, None, 0) in r1  # gap windows emitted with NULL sum

    def test_empty_window_emitted_with_nulls(self):
        events = [(0.5, 1.0), (6.5, 2.0)]
        spec = WindowSpec(WindowMode.TIME, 2.0)
        rows, _ = drive_time_window(
            IncrementalWindowAggregatePlan, spec, events, aggs=("sum", "count")
        )
        assert rows[0] == (0, 1.0, 1)
        assert rows[1] == (1, None, 0), "gap window has NULL sum, 0 count"
        assert rows[2] == (2, None, 0)

    def test_boundary_epsilon_regression(self):
        """Regression: a timestamp within 1e-9 below a bw boundary used to
        be bucketed into the *next* basic window by the incremental
        route's ``floor(t/bw + 1e-9)``, while re-evaluation's exact
        half-open mask kept it in the earlier window — the two routes
        disagreed on window membership (found by the hypothesis fuzz
        below under seeded exploration)."""
        events = [(1.9999999999999964, 0.0), (2.0, 0.0)]
        spec = WindowSpec(WindowMode.TIME, 2.0, 1.0)
        r1, _ = drive_time_window(
            ReEvalWindowAggregatePlan, spec, events,
            aggs=("sum", "count", "min", "max"),
        )
        r2, _ = drive_time_window(
            IncrementalWindowAggregatePlan, spec, events,
            aggs=("sum", "count", "min", "max"),
        )
        assert r1 == r2 == [(0, 0.0, 1, 0.0, 0.0)]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 30), st.floats(-10, 10)),
            max_size=50,
        ),
        st.sampled_from([(2.0, 1.0), (4.0, 2.0), (3.0, 3.0), (4.0, 1.0)]),
    )
    def test_time_routes_equivalent(self, raw_events, window):
        events = sorted(raw_events)  # in-order arrival
        size, slide = window
        spec = WindowSpec(WindowMode.TIME, size, slide)
        r1, _ = drive_time_window(
            ReEvalWindowAggregatePlan, spec, events,
            aggs=("sum", "count", "min", "max"),
        )
        r2, _ = drive_time_window(
            IncrementalWindowAggregatePlan, spec, events,
            aggs=("sum", "count", "min", "max"),
        )
        assert len(r1) == len(r2)
        for a, b in zip(r1, r2):
            assert a[0] == b[0]
            for x, y in zip(a[1:], b[1:]):
                if x is None or y is None:
                    assert x == y
                else:
                    assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-9)


class TestWindowJoin:
    def drive(self, left_events, right_events, window=2.0):
        clock = LogicalClock()
        left = Basket("l", [("k", AtomType.LNG)], clock)
        right = Basket("r", [("k", AtomType.LNG)], clock)
        out = Basket(
            "j_out",
            [("key", AtomType.LNG), ("left_time", AtomType.TIMESTAMP),
             ("right_time", AtomType.TIMESTAMP)],
            clock,
        )
        plan = SlidingWindowJoinPlan("l", "r", "k", "k", window, "j_out")
        f = Factory(
            "j", plan,
            [InputBinding(left, ConsumeMode.ALL, min_tuples=0),
             InputBinding(right, ConsumeMode.ALL, min_tuples=0)],
            [out],
        )
        merged = sorted(
            [("l", t, k) for t, k in left_events]
            + [("r", t, k) for t, k in right_events],
            key=lambda e: e[1],
        )
        for side, stamp, key in merged:
            target = left if side == "l" else right
            target.insert_rows([(key,)], timestamp=stamp)
            # activate manually (both inputs may be empty)
            f.activate()
        return [r[:3] for r in out.rows()], plan

    def test_matches_within_window(self):
        rows, _ = self.drive(
            left_events=[(0.0, 1), (5.0, 1)],
            right_events=[(1.0, 1)],
            window=2.0,
        )
        assert rows == [(1, 0.0, 1.0)]

    def test_no_cross_key_matches(self):
        rows, _ = self.drive(
            left_events=[(0.0, 1)], right_events=[(0.5, 2)], window=5.0
        )
        assert rows == []

    def test_symmetric(self):
        rows, _ = self.drive(
            left_events=[(1.0, 7)], right_events=[(0.5, 7)], window=1.0
        )
        assert rows == [(7, 1.0, 0.5)]

    def test_matches_brute_force(self):
        import itertools
        import random

        rng = random.Random(7)
        left = [(round(rng.uniform(0, 10), 2), rng.randint(1, 3))
                for _ in range(20)]
        right = [(round(rng.uniform(0, 10), 2), rng.randint(1, 3))
                 for _ in range(20)]
        window = 1.5
        rows, _ = self.drive(left, right, window)
        expected = {
            (lk, lt, rt)
            for (lt, lk), (rt, rk) in itertools.product(left, right)
            if lk == rk and abs(lt - rt) <= window
        }
        assert set(rows) == expected

    def test_window_must_be_positive(self):
        with pytest.raises(DataCellError):
            SlidingWindowJoinPlan("l", "r", "k", "k", 0, "o")
