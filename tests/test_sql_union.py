"""Tests for UNION / UNION ALL."""

import pytest

from repro import DataCell, LogicalClock
from repro.errors import BindError


@pytest.fixture
def cell():
    c = DataCell(clock=LogicalClock())
    c.execute("create table a (x int, s varchar(5))")
    c.execute("create table b (x int, s varchar(5))")
    c.execute("insert into a values (1, 'p'), (2, 'q'), (2, 'q')")
    c.execute("insert into b values (2, 'q'), (3, 'r')")
    return c


class TestUnion:
    def test_union_all_concatenates(self, cell):
        rows = cell.query("select x, s from a union all select x, s from b")
        assert rows == [
            (1, "p"), (2, "q"), (2, "q"), (2, "q"), (3, "r"),
        ]

    def test_union_dedupes(self, cell):
        rows = cell.query("select x, s from a union select x, s from b")
        assert sorted(rows) == [(1, "p"), (2, "q"), (3, "r")]

    def test_three_member_chain(self, cell):
        rows = cell.query(
            "select x from a union all select x from b "
            "union all select x from a"
        )
        assert len(rows) == 8

    def test_numeric_widening(self, cell):
        cell.execute("create table c (x double)")
        cell.execute("insert into c values (9.5)")
        rows = cell.query("select x from a union all select x from c")
        assert (9.5,) in rows
        assert (1.0,) in rows

    def test_arity_mismatch_rejected(self, cell):
        with pytest.raises(BindError):
            cell.query("select x, s from a union all select x from b")

    def test_type_mismatch_rejected(self, cell):
        with pytest.raises(Exception):
            cell.query("select s from a union all select x from b")

    def test_members_can_filter_and_aggregate(self, cell):
        rows = cell.query(
            "select count(*) from a union all select count(*) from b"
        )
        assert sorted(rows) == [(2,), (3,)]

    def test_union_with_where(self, cell):
        rows = cell.query(
            "select x from a where x > 1 union select x from b where x < 3"
        )
        assert sorted(rows) == [(2,)]
