"""Tests for scalar functions, LIKE, the optimizer, and LIMIT windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataCell, LogicalClock
from repro.errors import BindError, TypeMismatchError
from repro.kernel.bat import bat_from_values
from repro.kernel.mathops import math_unary
from repro.kernel.strings import (
    like_pattern_to_regex,
    like_select,
    str_length,
    str_lower,
    str_substring,
    str_trim,
    str_upper,
)
from repro.kernel.types import AtomType
from repro.sql.compiler import compile_select
from repro.sql.optimizer import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize,
)
from repro.sql.parser import parse_select


@pytest.fixture
def cell():
    c = DataCell(clock=LogicalClock())
    c.execute("create table t (s varchar(30), x double, n int)")
    c.execute(
        "insert into t values "
        "('hello world', 2.25, 4), ('Goodbye', -4.0, -3), "
        "(null, 9.0, null), ('  pad  ', 0.5, 16)"
    )
    return c


class TestStringPrimitives:
    def test_upper_lower(self):
        b = bat_from_values(AtomType.STR, ["aB", None])
        assert str_upper(b).python_list() == ["AB", None]
        assert str_lower(b).python_list() == ["ab", None]

    def test_length(self):
        b = bat_from_values(AtomType.STR, ["abc", "", None])
        assert str_length(b).python_list() == [3, 0, None]

    def test_trim(self):
        b = bat_from_values(AtomType.STR, ["  x ", None])
        assert str_trim(b).python_list() == ["x", None]

    def test_substring_one_based(self):
        b = bat_from_values(AtomType.STR, ["abcdef"])
        assert str_substring(b, 2, 3).python_list() == ["bcd"]
        assert str_substring(b, 3).python_list() == ["cdef"]

    def test_type_checked(self):
        b = bat_from_values(AtomType.INT, [1])
        with pytest.raises(TypeMismatchError):
            str_upper(b)


class TestLikePrimitives:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("h%", "hello", True),
            ("h%", "oh", False),
            ("%lo", "hello", True),
            ("h_llo", "hello", True),
            ("h_llo", "hllo", False),
            ("%", "", True),
            ("a\\%b", "a%b", True),
            ("a\\%b", "axb", False),
            ("100\\_%", "100_x", True),
        ],
    )
    def test_patterns(self, pattern, text, expected):
        assert bool(like_pattern_to_regex(pattern).match(text)) == expected

    def test_like_select_skips_nulls_both_ways(self):
        b = bat_from_values(AtomType.STR, ["abc", None, "xyz"])
        assert like_select(b, "a%").tolist() == [0]
        assert like_select(b, "a%", negated=True).tolist() == [2]


class TestMathPrimitives:
    def test_abs_preserves_type(self):
        b = bat_from_values(AtomType.LNG, [-5, None])
        out = math_unary("abs", b)
        assert out.atom is AtomType.LNG
        assert out.python_list() == [5, None]

    def test_sqrt_negative_is_null(self):
        b = bat_from_values(AtomType.DBL, [4.0, -1.0])
        assert math_unary("sqrt", b).python_list() == [2.0, None]

    def test_floor_ceil(self):
        b = bat_from_values(AtomType.DBL, [1.5, -1.5])
        assert math_unary("floor", b).python_list() == [1.0, -2.0]
        assert math_unary("ceil", b).python_list() == [2.0, -1.0]

    def test_round_digits(self):
        b = bat_from_values(AtomType.DBL, [2.345])
        assert math_unary("round", b, 2).python_list() == [2.35]

    def test_rejects_strings(self):
        b = bat_from_values(AtomType.STR, ["x"])
        with pytest.raises(TypeMismatchError):
            math_unary("abs", b)

    def test_unknown_function(self):
        with pytest.raises(TypeMismatchError):
            math_unary("log", bat_from_values(AtomType.INT, [1]))


class TestSqlFunctions:
    def test_string_functions(self, cell):
        rows = cell.query(
            "select upper(s), length(s) from t where s is not null "
            "order by length(s)"
        )
        assert rows[0] == ("GOODBYE", 7)

    def test_trim_substring(self, cell):
        rows = cell.query(
            "select substring(trim(s), 1, 3) from t where x = 0.5"
        )
        assert rows == [("pad",)]

    def test_math_functions(self, cell):
        rows = cell.query(
            "select abs(n), sqrt(x) from t where n is not null order by n"
        )
        assert rows[0] == (3, None)  # sqrt(-4) -> NULL
        assert rows[1] == (4, 1.5)

    def test_round(self, cell):
        rows = cell.query("select round(x, 1) from t where x = 2.25")
        assert rows == [(2.3,)] or rows == [(2.2,)]  # banker's rounding

    def test_functions_in_where(self, cell):
        rows = cell.query("select s from t where length(s) = 11")
        assert rows == [("hello world",)]

    def test_like_in_where(self, cell):
        rows = cell.query("select s from t where s like 'h%world'")
        assert rows == [("hello world",)]

    def test_not_like(self, cell):
        rows = cell.query(
            "select s from t where s not like '%o%' and s is not null"
        )
        assert rows == [("  pad  ",)]

    def test_like_pattern_must_be_literal(self, cell):
        with pytest.raises(BindError):
            cell.query("select s from t where s like s")

    def test_like_on_numbers_rejected(self, cell):
        with pytest.raises(BindError):
            cell.query("select s from t where x like '2%'")

    def test_substring_bounds_checked(self, cell):
        with pytest.raises(BindError):
            cell.query("select substring(s, x) from t")

    def test_unknown_function_rejected(self, cell):
        with pytest.raises(BindError):
            cell.query("select frobnicate(s) from t")


class TestLimitWindows:
    def test_limit_window_consumes_in_batches(self):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket b (v int)")
        q = cell.submit_continuous(
            "select * from [select * from b limit 2] as s"
        )
        cell.insert("b", [(i,) for i in range(5)])
        cell.step()
        assert len(q.peek()) == 2, "one firing takes LIMIT tuples"
        cell.run_until_quiescent()
        assert [r[0] for r in q.fetch()] == [0, 1, 2, 3, 4]
        assert cell.basket("b").count == 0

    def test_limit_with_predicate_no_livelock(self):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket c (v int)")
        q = cell.submit_continuous(
            "select * from [select * from c where c.v > 10 limit 2] as s"
        )
        cell.insert("c", [(1,), (11,), (12,), (13,), (2,)])
        cell.run_until_quiescent()
        assert sorted(r[0] for r in q.fetch()) == [11, 12, 13]
        assert cell.basket("c").count == 2, "non-matching tuples retained"

    def test_inner_order_by_rejected(self):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket d (v int)")
        with pytest.raises(BindError):
            cell.submit_continuous(
                "select * from [select * from d order by v] as s"
            )


class TestOptimizer:
    def compiled(self, cell, sql):
        return compile_select(cell.catalog, parse_select(sql))

    def test_dce_removes_unused_binds(self, cell):
        compiled = self.compiled(cell, "select s from t")
        optimized, report = optimize(compiled.program)
        assert report.instructions_after < report.instructions_before
        # still runs and produces the same rows
        rows_opt = cell.interpreter.run(optimized).rows()
        rows_raw = cell.interpreter.run(compiled.program).rows()
        assert rows_opt == rows_raw

    def test_cse_merges_repeated_projections(self, cell):
        compiled = self.compiled(
            cell, "select x + x, x + x from t"
        )
        optimized, report = optimize(compiled.program)
        assert report.cse_merged >= 1
        assert cell.interpreter.run(optimized).rows() == (
            cell.interpreter.run(compiled.program).rows()
        )

    def test_protected_roots_survive(self, cell):
        from repro.kernel.mal import Const, Program, Var

        p = Program()
        a = p.emit("language", "pass", [Const(1)])
        p.emit("language", "pass", [Const(2)], results=["keepme"])
        p.output = a
        pruned, removed = eliminate_dead_code(p, protected=["keepme"])
        names = {r for ins in pruned.instructions for r in ins.results}
        assert "keepme" in names

    def test_effectful_instructions_never_dropped(self, cell):
        from repro.kernel.mal import Const, Program

        p = Program()
        p.emit("basket", "bind", [Const("t")])
        p.output = p.emit("language", "pass", [Const(0)])
        pruned, _ = eliminate_dead_code(p)
        assert any(
            ins.module == "basket" for ins in pruned.instructions
        )

    def test_cse_keeps_output_alias(self, cell):
        from repro.kernel.mal import Const, Program

        p = Program()
        p.emit("language", "pass", [Const(5)])
        b = p.emit("language", "pass", [Const(5)])
        p.output = b
        merged, count = eliminate_common_subexpressions(p)
        assert count == 1
        assert cell.interpreter.run(merged) == 5

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
            max_size=30,
        )
    )
    def test_optimized_plans_equivalent(self, rows):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create table d (a int, b int)")
        for a, b in rows:
            cell.execute(f"insert into d values ({a}, {b})")
        sql = (
            "select a + b as apb, a + b as again, a from d "
            "where a > 0 and b > 0 order by a"
        )
        compiled = compile_select(cell.catalog, parse_select(sql))
        optimized, _ = optimize(compiled.program)
        assert (
            cell.interpreter.run(optimized).rows()
            == cell.interpreter.run(compiled.program).rows()
        )

    def test_continuous_plans_still_consume(self):
        """The optimizer must not break consumed-candidate plumbing."""
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket b (v int)")
        q = cell.submit_continuous(
            "select s.v from [select * from b where b.v > 5] as s"
        )
        cell.insert("b", [(3,), (7,)])
        cell.run_until_quiescent()
        assert q.fetch() == [(7,)]
        assert cell.basket("b").count == 1
