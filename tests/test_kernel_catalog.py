"""Unit tests for the catalog: schemas, tables, registration."""

import numpy as np
import pytest

from repro.errors import AlignmentError, CatalogError
from repro.kernel.catalog import Catalog, ColumnDef, Schema, Table
from repro.kernel.bat import bat_from_values
from repro.kernel.types import AtomType


def sensor_schema():
    return Schema(
        [ColumnDef("sensor", AtomType.INT), ColumnDef("temp", AtomType.DBL)]
    )


class TestSchema:
    def test_ordering_preserved(self):
        s = sensor_schema()
        assert s.names() == ["sensor", "temp"]

    def test_case_insensitive_lookup(self):
        s = sensor_schema()
        assert s.atom("SENSOR") is AtomType.INT
        assert s.position("Temp") == 1

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            sensor_schema().atom("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Schema([ColumnDef("a", AtomType.INT), ColumnDef("A", AtomType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            Schema([])

    def test_bad_column_name_rejected(self):
        with pytest.raises(CatalogError):
            ColumnDef("not a name", AtomType.INT)

    def test_equality(self):
        assert sensor_schema() == sensor_schema()


class TestTable:
    def test_append_row(self):
        t = Table("s", sensor_schema())
        t.append_row([1, 20.5])
        assert t.count == 1
        assert t.rows() == [(1, 20.5)]

    def test_append_rows(self):
        t = Table("s", sensor_schema())
        assert t.append_rows([(1, 1.0), (2, 2.0)]) == 2
        assert t.count == 2

    def test_arity_checked(self):
        t = Table("s", sensor_schema())
        with pytest.raises(CatalogError):
            t.append_row([1])

    def test_append_columns(self):
        t = Table("s", sensor_schema())
        n = t.append_columns(
            {
                "sensor": np.array([1, 2], dtype=np.int32),
                "temp": np.array([1.0, 2.0]),
            }
        )
        assert n == 2 and t.count == 2

    def test_append_columns_must_cover_schema(self):
        t = Table("s", sensor_schema())
        with pytest.raises(CatalogError):
            t.append_columns({"sensor": np.array([1], dtype=np.int32)})

    def test_append_columns_length_mismatch(self):
        t = Table("s", sensor_schema())
        with pytest.raises(CatalogError):
            t.append_columns(
                {
                    "sensor": np.array([1], dtype=np.int32),
                    "temp": np.array([1.0, 2.0]),
                }
            )

    def test_truncate_restarts_oids_at_hseq_end(self):
        t = Table("s", sensor_schema())
        t.append_rows([(1, 1.0), (2, 2.0)])
        removed = t.truncate()
        assert removed == 2 and t.count == 0
        assert t.bat("sensor").hseqbase == 2

    def test_alignment_invariant(self):
        t = Table("s", sensor_schema())
        t.append_row([1, 1.0])
        t.check_alignment()
        # corrupt one column on purpose
        t.bat("sensor").append(99)
        with pytest.raises(AlignmentError):
            t.check_alignment()

    def test_replace_bats(self):
        t = Table("s", sensor_schema())
        new = {
            "sensor": bat_from_values(AtomType.INT, [9]),
            "temp": bat_from_values(AtomType.DBL, [9.0]),
        }
        t.replace_bats(new)
        assert t.rows() == [(9, 9.0)]

    def test_replace_bats_checks_columns(self):
        t = Table("s", sensor_schema())
        with pytest.raises(CatalogError):
            t.replace_bats({"sensor": bat_from_values(AtomType.INT, [1])})

    def test_rows_limit(self):
        t = Table("s", sensor_schema())
        t.append_rows([(i, float(i)) for i in range(5)])
        assert len(t.rows(limit=2)) == 2

    def test_nulls_roundtrip(self):
        t = Table("s", sensor_schema())
        t.append_row([None, None])
        assert t.rows() == [(None, None)]


class TestCatalog:
    def test_create_and_get(self):
        cat = Catalog()
        cat.create_table("s", [("a", AtomType.INT)])
        assert cat.get("S").name == "s"
        assert cat.has("s")

    def test_duplicate_rejected(self):
        cat = Catalog()
        cat.create_table("s", [("a", AtomType.INT)])
        with pytest.raises(CatalogError):
            cat.create_table("S", [("a", AtomType.INT)])

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().get("missing")

    def test_drop(self):
        cat = Catalog()
        cat.create_table("s", [("a", AtomType.INT)])
        cat.drop("s")
        assert not cat.has("s")
        with pytest.raises(CatalogError):
            cat.drop("s")

    def test_baskets_filter(self):
        cat = Catalog()
        cat.create_table("t", [("a", AtomType.INT)])
        cat.create_table("b", [("a", AtomType.INT)], is_basket=True)
        names = [t.name for t in cat.baskets()]
        assert names == ["b"]
