"""Causal span tracing: sampling, hand-off chains, Chrome trace export.

The acceptance test for the tracing tentpole lives here: every sampled
batch produces exactly one root span, and the exported Chrome trace JSON
shows the receptor → factory → opcode → emitter causal nesting.
"""

import json

from repro import DataCell
from repro.obs.spans import SpanRecorder

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell(sample_rate=1):
    spans = SpanRecorder(sample_rate=sample_rate)
    cell = DataCell(spans=spans)
    cell.execute("create basket sensors (sensor int, temp double)")
    query = cell.submit_continuous(CQ, name="hot")
    receptor = cell.add_receptor("rx", ["sensors"])
    return cell, query, receptor, spans


def push_batches(cell, receptor, n, rows_per_batch=3):
    """Drive n receptor activations, each appending one sampled batch."""
    for batch in range(n):
        for row in range(rows_per_batch):
            receptor.channel.push(f"{batch * 10 + row}, {40.0 + row}")
        cell.run_until_quiescent()


class TestSampling:
    def test_every_batch_sampled_at_rate_one(self):
        cell, _, receptor, spans = build_cell(sample_rate=1)
        push_batches(cell, receptor, 5)
        assert spans.batches_seen == 5
        assert spans.sampled_batches == 5

    def test_deterministic_one_in_n(self):
        cell, _, receptor, spans = build_cell(sample_rate=4)
        push_batches(cell, receptor, 8)
        assert spans.batches_seen == 8
        assert spans.sampled_batches == 2  # batches 0 and 4

    def test_unsampled_batches_produce_no_spans(self):
        cell, query, receptor, spans = build_cell(sample_rate=100)
        push_batches(cell, receptor, 3)
        assert spans.sampled_batches == 1  # batch 0 only
        assert len(spans.spans(kind="batch")) == 1
        # the data still flows: tracing never gates delivery
        assert query.results_delivered == 9

    def test_disabled_recorder_records_nothing(self):
        spans = SpanRecorder(enabled=False)
        cell = DataCell(spans=spans)
        cell.execute("create basket sensors (sensor int, temp double)")
        query = cell.submit_continuous(CQ)
        receptor = cell.add_receptor("rx", ["sensors"])
        push_batches(cell, receptor, 2)
        assert spans.batches_seen == 0
        assert len(spans) == 0
        assert query.results_delivered == 6


class TestCausalNesting:
    """One root per sampled batch, with the full causal chain beneath."""

    def test_root_spans_match_sampled_batches(self):
        cell, _, receptor, spans = build_cell(sample_rate=1)
        push_batches(cell, receptor, 4)
        roots = spans.spans(kind="batch")
        assert len(roots) == spans.sampled_batches == 4
        assert spans.open_roots() == []  # emitters closed every root

    def test_chrome_trace_nesting(self, tmp_path):
        cell, _, receptor, spans = build_cell(sample_rate=1)
        push_batches(cell, receptor, 2)
        path = str(tmp_path / "trace.json")
        cell.export_chrome_trace(path)
        with open(path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert all(e["ph"] == "X" for e in events)

        by_id = {e["args"]["span_id"]: e for e in events}
        roots = [e for e in events if e["cat"] == "batch"]
        assert len(roots) == 2
        for root in roots:
            token = root["args"]["token"]
            children = [
                e for e in events
                if e["args"].get("token") == token and e is not root
            ]
            kinds = {e["cat"] for e in children}
            assert kinds == {"receptor", "factory", "opcode", "emitter"}
            receptor_s = next(
                e for e in children if e["cat"] == "receptor"
            )
            factory_s = next(
                e for e in children if e["cat"] == "factory"
            )
            emitter_s = next(
                e for e in children if e["cat"] == "emitter"
            )
            opcodes = [e for e in children if e["cat"] == "opcode"]
            # receptor continues the root; the factory continues the
            # receptor's hand-off; opcodes nest inside the factory span;
            # the emitter continues the factory's hand-off
            assert receptor_s["args"]["parent_id"] == root["args"]["span_id"]
            assert (
                factory_s["args"]["parent_id"]
                == receptor_s["args"]["span_id"]
            )
            assert opcodes, "interpreter emitted no per-opcode spans"
            for op in opcodes:
                assert (
                    op["args"]["parent_id"] == factory_s["args"]["span_id"]
                )
            assert (
                emitter_s["args"]["parent_id"]
                == factory_s["args"]["span_id"]
            )
            # every parent is itself a recorded span
            for e in children:
                assert e["args"]["parent_id"] in by_id

    def test_span_timings_nest_within_parents(self):
        cell, _, receptor, spans = build_cell(sample_rate=1)
        push_batches(cell, receptor, 1)
        root = spans.spans(kind="batch")[0]
        for kind in ("receptor", "factory", "emitter"):
            child = spans.spans(kind=kind)[0]
            assert child.start >= root.start
            assert child.end <= root.end

    def test_opcode_spans_carry_plan_node(self):
        cell, _, receptor, spans = build_cell(sample_rate=1)
        push_batches(cell, receptor, 1)
        opcodes = spans.spans(kind="opcode")
        assert opcodes
        assert any(op.attrs.get("node") is not None for op in opcodes)


class TestRecorderUnit:
    def test_handoff_chain(self):
        rec = SpanRecorder(sample_rate=1)
        token = rec.begin_batch()
        a = rec.begin_stage("a", "receptor", token)
        assert a.parent_id == token
        rec.end_stage(a, handoff=True)
        b = rec.begin_stage("b", "factory", token)
        assert b.parent_id == a.span_id
        rec.end_stage(b)  # no hand-off: next stage still chains from a
        c = rec.begin_stage("c", "factory", token)
        assert c.parent_id == a.span_id

    def test_zero_token_stage_is_free(self):
        rec = SpanRecorder(sample_rate=1)
        assert rec.begin_stage("x", "factory", 0) is None

    def test_close_root_idempotent(self):
        rec = SpanRecorder(sample_rate=1)
        token = rec.begin_batch()
        rec.close_root(token)
        first_end = rec.spans(kind="batch")[0].end
        rec.close_root(token)  # replicated output: second emitter closes too
        roots = rec.spans(kind="batch")
        assert len(roots) == 1
        assert roots[0].end >= first_end

    def test_capacity_bounds_memory(self):
        rec = SpanRecorder(sample_rate=1, capacity=8)
        for _ in range(20):
            token = rec.begin_batch()
            rec.close_root(token)
        assert len(rec) == 8

    def test_current_stage_thread_local_context(self):
        rec = SpanRecorder(sample_rate=1)
        token = rec.begin_batch()
        span = rec.begin_stage("f", "factory", token)
        assert rec.current_stage() is None
        with rec.stage(span):
            assert rec.current_stage() is span
        assert rec.current_stage() is None

    def test_export_is_valid_json_with_open_roots(self, tmp_path):
        rec = SpanRecorder(sample_rate=1)
        rec.begin_batch()  # never closed: rendered to "now"
        path = str(tmp_path / "open.json")
        rec.export_chrome_trace(path)
        with open(path) as handle:
            trace = json.load(handle)
        assert trace["displayTimeUnit"] == "ms"
        assert len(trace["traceEvents"]) == 1
