"""Unit tests for factories: Algorithm 1 semantics and consume modes."""

import numpy as np
import pytest

from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import (
    CallablePlan,
    ConsumeMode,
    Factory,
    InputBinding,
    PlanOutput,
)
from repro.errors import DataCellError
from repro.kernel.bat import bat_from_values
from repro.kernel.join import projection
from repro.kernel.mal import ResultSet
from repro.kernel.select import range_select
from repro.kernel.types import AtomType


@pytest.fixture
def clock():
    return LogicalClock()


def make_baskets(clock):
    inp = Basket("src", [("v", AtomType.INT)], clock)
    out = Basket("dst", [("v", AtomType.INT)], clock)
    return inp, out


def select_plan(low, high, out_name="dst"):
    def plan(snaps):
        snap = snaps["src"]
        col = snap.column("v")
        cands = range_select(col, low, high)
        return ResultSet(["v"], [projection(cands, col)])

    return CallablePlan(plan, default_output=out_name)


class TestActivation:
    def test_basic_select_flow(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", select_plan(10, 20), [inp], [out])
        inp.insert_rows([(5,), (15,), (25,)])
        result = f.activate()
        assert result.fired
        assert result.tuples_in == 3
        assert result.tuples_out == 1
        assert [r[0] for r in out.rows()] == [15]
        assert inp.count == 0, "ALL mode empties the input (Algorithm 1)"

    def test_state_saved_between_calls(self, clock):
        """The factory is a co-routine: plan state persists."""
        inp, out = make_baskets(clock)
        seen = []

        def plan(snaps):
            seen.append(snaps["src"].count)
            return None

        f = Factory("q", CallablePlan(plan), [inp], [out])
        inp.insert_rows([(1,)])
        f.activate()
        inp.insert_rows([(2,), (3,)])
        f.activate()
        assert seen == [1, 2]
        assert f.activations == 2

    def test_needs_input(self, clock):
        _, out = make_baskets(clock)
        with pytest.raises(DataCellError):
            Factory("q", select_plan(0, 1), [], [out])

    def test_unknown_output_rejected(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", select_plan(0, 100, out_name="nowhere"), [inp], [out])
        inp.insert_rows([(1,)])
        with pytest.raises(DataCellError):
            f.activate()

    def test_statistics_accumulate(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", select_plan(0, 100), [inp], [out])
        for batch in ([(1,)], [(2,), (3,)]):
            inp.insert_rows(batch)
            f.activate()
        assert f.total_in == 3
        assert f.total_out == 3


class TestEnablement:
    def test_petri_net_firing_condition(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", select_plan(0, 100), [inp], [out])
        assert not f.enabled()
        inp.insert_rows([(1,)])
        assert f.enabled()

    def test_min_tuples_threshold(self, clock):
        inp, out = make_baskets(clock)
        f = Factory(
            "q", select_plan(0, 100),
            [InputBinding(inp, min_tuples=3)], [out],
        )
        inp.insert_rows([(1,), (2,)])
        assert not f.enabled()
        inp.insert_rows([(3,)])
        assert f.enabled()

    def test_basket_min_count_respected(self, clock):
        inp, out = make_baskets(clock)
        inp.min_count = 5
        f = Factory("q", select_plan(0, 100), [inp], [out])
        inp.insert_rows([(1,)] * 4)
        assert not f.enabled()
        inp.insert_rows([(1,)])
        assert f.enabled()

    def test_multi_input_needs_all(self, clock):
        """All inputs must have tuples (paper §2.4)."""
        a = Basket("a", [("v", AtomType.INT)], clock)
        b = Basket("b", [("v", AtomType.INT)], clock)
        out = Basket("o", [("v", AtomType.INT)], clock)
        f = Factory("j", CallablePlan(lambda s: None), [a, b], [out])
        a.insert_rows([(1,)])
        assert not f.enabled()
        b.insert_rows([(2,)])
        assert f.enabled()


class TestConsumeModes:
    def test_plan_mode_consumes_referenced_only(self, clock):
        """Basket-expression semantics: only referenced tuples removed."""
        inp, out = make_baskets(clock)

        def plan(snaps):
            snap = snaps["src"]
            col = snap.column("v")
            cands = range_select(col, 10, 20)
            return PlanOutput(
                results={
                    "dst": ResultSet(["v"], [projection(cands, col)])
                },
                consumed={"src": cands},
            )

        f = Factory(
            "q", CallablePlan(plan),
            [InputBinding(inp, ConsumeMode.PLAN)], [out],
        )
        inp.insert_rows([(5,), (15,), (25,)])
        f.activate()
        assert sorted(r[0] for r in inp.rows()) == [5, 25]
        assert [r[0] for r in out.rows()] == [15]

    def test_plan_mode_does_not_refire_on_leftovers(self, clock):
        inp, out = make_baskets(clock)
        f = Factory(
            "q",
            CallablePlan(lambda s: PlanOutput(consumed={"src": np.array([])})),
            [InputBinding(inp, ConsumeMode.PLAN)],
            [out],
        )
        inp.insert_rows([(5,)])
        assert f.enabled()
        f.activate()
        assert inp.count == 1
        assert not f.enabled(), "no new tuples -> no refiring"
        inp.insert_rows([(6,)])
        assert f.enabled()

    def test_peek_mode_keeps_everything(self, clock):
        inp, out = make_baskets(clock)
        f = Factory(
            "q", select_plan(0, 100),
            [InputBinding(inp, ConsumeMode.PEEK)], [out],
        )
        inp.insert_rows([(1,)])
        f.activate()
        assert inp.count == 1

    def test_shared_mode_advances_cursor(self, clock):
        inp, out = make_baskets(clock)
        f1 = Factory(
            "q1", select_plan(0, 100),
            [InputBinding(inp, ConsumeMode.SHARED)], [out],
        )
        f2 = Factory(
            "q2", select_plan(0, 100),
            [InputBinding(inp, ConsumeMode.SHARED)], [out],
        )
        inp.insert_rows([(1,), (2,)])
        f1.activate()
        assert inp.count == 2, "q2 has not seen the tuples yet"
        f2.activate()
        assert inp.count == 0, "all shared readers done -> gc"
        assert not f1.enabled() and not f2.enabled()

    def test_shared_mode_sees_only_new(self, clock):
        inp, out = make_baskets(clock)
        f1 = Factory(
            "q1", select_plan(0, 100),
            [InputBinding(inp, ConsumeMode.SHARED)], [out],
        )
        inp.insert_rows([(1,)])
        r = f1.activate()
        assert r.tuples_in == 1
        inp.insert_rows([(2,)])
        r = f1.activate()
        assert r.tuples_in == 1, "second activation sees only the new tuple"

    def test_close_unregisters_shared_reader(self, clock):
        inp, out = make_baskets(clock)
        f = Factory(
            "q", select_plan(0, 100),
            [InputBinding(inp, ConsumeMode.SHARED)], [out],
        )
        assert inp.readers() == ["q"]
        f.close()
        assert inp.readers() == []


class TestLocking:
    def test_locks_released_after_activation(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", select_plan(0, 100), [inp], [out])
        inp.insert_rows([(1,)])
        f.activate()
        # if locks leaked, this acquire would deadlock (RLock same thread
        # would pass; check via another thread)
        import threading

        acquired = []

        def try_lock():
            acquired.append(inp.lock.acquire(timeout=1))
            if acquired[-1]:
                inp.lock.release()

        t = threading.Thread(target=try_lock)
        t.start()
        t.join()
        assert acquired == [True]

    def test_lock_order_is_name_sorted(self, clock):
        a = Basket("zzz", [("v", AtomType.INT)], clock)
        b = Basket("aaa", [("v", AtomType.INT)], clock)
        f = Factory("q", CallablePlan(lambda s: None), [a], [b])
        order = [bk.name for bk in f._lock_order()]
        assert order == ["aaa", "zzz"]

    def test_shared_input_output_basket_deduped(self, clock):
        a = Basket("loop", [("v", AtomType.INT)], clock)
        f = Factory("q", CallablePlan(lambda s: None), [a], [a])
        assert len(f._lock_order()) == 1


class TestCallablePlan:
    def test_none_result(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", CallablePlan(lambda s: None), [inp], [out])
        inp.insert_rows([(1,)])
        result = f.activate()
        assert result.tuples_out == 0

    def test_dict_result(self, clock):
        inp, out = make_baskets(clock)

        def plan(snaps):
            return {
                "dst": ResultSet(["v"], [bat_from_values(AtomType.INT, [9])])
            }

        f = Factory("q", CallablePlan(plan), [inp], [out])
        inp.insert_rows([(1,)])
        f.activate()
        assert [r[0] for r in out.rows()] == [9]

    def test_bare_resultset_needs_default_output(self, clock):
        inp, out = make_baskets(clock)
        rs = ResultSet(["v"], [bat_from_values(AtomType.INT, [1])])
        f = Factory("q", CallablePlan(lambda s: rs), [inp], [out])
        inp.insert_rows([(1,)])
        with pytest.raises(DataCellError):
            f.activate()

    def test_bad_return_type(self, clock):
        inp, out = make_baskets(clock)
        f = Factory("q", CallablePlan(lambda s: 42), [inp], [out])
        inp.insert_rows([(1,)])
        with pytest.raises(DataCellError):
            f.activate()
