"""System streams: the sampler, meta-queries, alerts, and exemptions.

The self-monitoring contract under test:

* ``sys.*`` baskets exist once streams are enabled, are query-able like
  user baskets (meta-queries), and are read-only/reserved for users;
* the sampler is deterministic under a :class:`LogicalClock` — one
  sample per elapsed interval, absorbed into one activation, and
  ``run_until_quiescent`` still quiesces (no self-measurement feedback);
* system baskets are ring-buffers (retention) and second-class citizens
  of durability and shedding: no WAL capture, no checkpoint rows, no
  shed accounting;
* :class:`AlertRule` fires exactly once per breach window.
"""

import pytest

from repro.core.clock import LogicalClock
from repro.core.engine import DataCell
from repro.core.shedding import apply_shedding_policy
from repro.durability import DurabilityConfig
from repro.errors import DataCellError, SqlError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sysstreams import (
    SYS_BASKETS,
    SYS_EVENTS,
    SYS_METRICS,
    SYS_QUERIES,
    SYS_STREAM_SCHEMAS,
    SystemStreamsConfig,
    is_system_name,
    tail_rows,
)

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell(interval=1.0, retention=512, **kwargs):
    clock = LogicalClock()
    cell = DataCell(
        clock=clock,
        metrics=MetricsRegistry(),
        system_streams=SystemStreamsConfig(
            interval=interval, retention=retention
        ),
        **kwargs,
    )
    cell.execute("create basket sensors (sensor int, temp double)")
    return cell, clock


def tick(cell, clock, n=1):
    for _ in range(n):
        clock.advance(1.0)
        cell.run_until_quiescent()


class TestRegistration:
    def test_streams_preregistered(self):
        cell, _ = build_cell()
        for name in (SYS_METRICS, SYS_QUERIES, SYS_BASKETS, SYS_EVENTS):
            assert cell.catalog.has(name)
            basket = cell.basket(name)
            assert basket.is_system
            assert basket.retention == 512
            assert basket.wal_sink is None

    def test_schemas_match_declaration(self):
        cell, _ = build_cell()
        for name, columns in SYS_STREAM_SCHEMAS.items():
            basket = cell.basket(name)
            assert [
                (c.name, c.atom) for c in basket.user_columns
            ] == [(n.lower(), a) for n, a in columns]

    def test_enable_twice_rejected(self):
        cell, _ = build_cell()
        with pytest.raises(DataCellError):
            cell.enable_system_streams()

    def test_disable_then_reenable(self):
        cell, clock = build_cell()
        cell.disable_system_streams()
        assert not cell.catalog.has(SYS_METRICS)
        assert cell.sys is None
        cell.disable_system_streams()  # idempotent
        cell.enable_system_streams(SystemStreamsConfig(interval=1.0))
        tick(cell, clock)
        assert cell.sys.samples_taken == 1

    def test_off_by_default(self):
        cell = DataCell(metrics=MetricsRegistry())
        assert cell.sys is None
        assert not cell.catalog.has(SYS_METRICS)

    def test_is_system_name(self):
        assert is_system_name("sys.metrics")
        assert is_system_name("SYS.anything")
        assert not is_system_name("sensors")
        assert not is_system_name("system")  # no dot: not reserved

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DataCell(system_streams=SystemStreamsConfig(interval=0))
        with pytest.raises(ValueError):
            DataCell(system_streams=SystemStreamsConfig(retention=0))


class TestReservedNames:
    def test_user_cannot_create_sys_basket(self):
        cell, _ = build_cell()
        with pytest.raises(SqlError):
            cell.execute("create basket sys.mine (v int)")
        with pytest.raises(SqlError):
            cell.execute("create table sys.mine (v int)")

    def test_user_cannot_drop_sys_stream(self):
        cell, _ = build_cell()
        with pytest.raises(SqlError):
            cell.execute("drop basket sys.metrics")
        assert cell.catalog.has(SYS_METRICS)

    def test_sys_streams_are_read_only(self):
        cell, _ = build_cell()
        with pytest.raises(SqlError):
            cell.execute(
                "insert into sys.events values ('k', 'c', 'd')"
            )
        with pytest.raises(SqlError):
            cell.insert(SYS_EVENTS, [("k", "c", "d")])

    def test_guard_holds_without_streams_enabled(self):
        cell = DataCell(metrics=MetricsRegistry())
        with pytest.raises(SqlError):
            cell.create_basket("sys.mine", [("v", "int")])


class TestSamplerDeterminism:
    def test_no_sample_before_interval(self):
        cell, clock = build_cell()
        cell.run_until_quiescent()
        assert cell.sys.samples_taken == 0
        assert cell.basket(SYS_METRICS).count == 0

    def test_one_sample_per_tick(self):
        cell, clock = build_cell()
        tick(cell, clock, 3)
        assert cell.sys.samples_taken == 3

    def test_one_activation_absorbs_many_intervals(self):
        cell, clock = build_cell()
        clock.advance(10.0)
        cell.run_until_quiescent()
        assert cell.sys.samples_taken == 1

    def test_steady_state_is_bounded(self):
        # sampling must not feed itself: with no user activity the only
        # per-tick changes are the scheduler's own iteration counters, so
        # the rows added per tick settle to a small constant (and
        # run_until_quiescent keeps terminating — no livelock)
        cell, clock = build_cell()
        tick(cell, clock, 2)
        basket = cell.basket(SYS_METRICS)
        before = basket.count
        tick(cell, clock)
        steady = basket.count - before
        assert steady <= 4
        tick(cell, clock)
        assert basket.count - before == 2 * steady
        metrics = {r[0] for r in cell.query("select metric from sys.metrics")}
        assert not any(m.startswith("datacell_sys_") for m in metrics)

    def test_metric_rows_are_deltas(self):
        cell, clock = build_cell()
        cell.insert("sensors", [(1, 10.0)])
        cell.run_until_quiescent()
        tick(cell, clock)
        rows = cell.query(
            "select value, delta from sys.metrics "
            "where metric = 'datacell_basket_inserted_total'"
        )
        assert rows == [(1.0, 1.0)]
        cell.insert("sensors", [(2, 11.0), (3, 12.0)])
        cell.run_until_quiescent()
        tick(cell, clock)
        rows = cell.query(
            "select value, delta from sys.metrics "
            "where metric = 'datacell_basket_inserted_total'"
        )
        assert rows == [(1.0, 1.0), (3.0, 2.0)]

    def test_histograms_expand_to_suffixed_rows(self):
        cell, clock = build_cell()
        q = cell.submit_continuous(CQ, name="hot")
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        assert q.fetch()
        tick(cell, clock)
        metrics = {
            r[0] for r in cell.query("select metric from sys.metrics")
        }
        for suffix in ("_count", "_sum", "_p50", "_p99"):
            assert f"datacell_query_latency_seconds{suffix}" in metrics
        assert "datacell_query_latency_seconds" not in metrics

    def test_sys_queries_stream(self):
        cell, clock = build_cell()
        cell.submit_continuous(CQ, name="hot")
        cell.insert("sensors", [(1, 45.0), (2, 50.0)])
        cell.run_until_quiescent()
        tick(cell, clock)
        rows = cell.query(
            "select query, delivered, delivered_delta from sys.queries"
        )
        assert rows == [("hot", 2, 2)]
        tick(cell, clock)
        rows = cell.query(
            "select delivered, delivered_delta from sys.queries "
            "where query = 'hot'"
        )
        assert rows[-1] == (2, 0)

    def test_sys_baskets_excludes_system_baskets(self):
        cell, clock = build_cell()
        tick(cell, clock, 2)
        names = {r[0] for r in cell.query("select basket from sys.baskets")}
        assert names == {"sensors"}

    def test_trace_events_drained_by_kind(self):
        cell, clock = build_cell()
        cell.trace.record("checkpoint", "durability", id=1)
        cell.trace.record("firing", "noise")  # not in event_kinds
        tick(cell, clock)
        events = cell.query("select kind, component from sys.events")
        assert ("checkpoint", "durability") in events
        assert all(k != "firing" for k, _ in events)

    def test_emit_event_direct(self):
        cell, _ = build_cell()
        cell.sys.emit_event("error", "test", detail="boom")
        assert cell.query("select kind from sys.events") == [("error",)]


class TestRingRetention:
    def test_depth_bounded_without_shedding(self):
        cell, clock = build_cell(retention=8)
        for i in range(30):
            cell.insert("sensors", [(i, float(i))])
            tick(cell, clock)
        for name in (SYS_METRICS, SYS_BASKETS):
            basket = cell.basket(name)
            assert basket.count <= 8
            assert basket.total_trimmed > 0
            assert basket.total_shed == 0, (
                "ring trimming must not count as shedding"
            )

    def test_oldest_rows_trimmed(self):
        cell, clock = build_cell(retention=4)
        for i in range(12):
            cell.insert("sensors", [(i, float(i))])
            tick(cell, clock)
        depths = [
            r[0] for r in cell.query("select depth_delta from sys.baskets")
        ]
        assert len(depths) == 4  # only the newest 4 samples survive

    def test_shedding_controller_exempts_system_baskets(self):
        cell, clock = build_cell(retention=64)
        tick(cell, clock, 3)
        basket = cell.basket(SYS_METRICS)
        assert basket.count > 0
        assert apply_shedding_policy(basket, 0, "oldest") == 0
        assert basket.count > 0

    def test_user_basket_retention_is_off(self):
        cell, _ = build_cell()
        assert cell.basket("sensors").retention is None


class TestMetaQueries:
    def test_backlog_detection_end_to_end(self):
        # the flight recorder's stall predicate as one SQL statement: a
        # basket whose depth rises while nothing consumes it
        cell, clock = build_cell()
        mq = cell.submit_continuous(
            "select b.basket, b.depth from "
            "[select * from sys.baskets where depth_delta > 0 "
            "and consumed_delta = 0] as b",
            name="stalls",
        )
        tick(cell, clock)
        assert mq.fetch() == []  # healthy: no backlog
        cell.insert("sensors", [(i, 1.0) for i in range(5)])  # no consumer
        tick(cell, clock)
        assert mq.fetch() == [("sensors", 5)]

    def test_one_time_select_over_sys(self):
        cell, clock = build_cell()
        tick(cell, clock)
        (count,) = cell.query("select count(*) from sys.metrics")[0]
        assert count == cell.basket(SYS_METRICS).count

    def test_latency_slo_meta_query(self):
        cell, clock = build_cell()
        cell.submit_continuous(CQ, name="hot")
        cell.insert("sensors", [(1, 45.0)])
        cell.run_until_quiescent()
        tick(cell, clock)
        rows = cell.query(
            "select query from sys.queries where p99_latency > 10.0"
        )
        assert rows == []  # logical-clock latencies are tiny


class TestAlertRules:
    def breach(self, cell, clock, rounds=3):
        for _ in range(rounds):
            tick(cell, clock)

    def test_fires_once_per_breach_window(self):
        cell, clock = build_cell()
        fired = []
        rule = cell.add_alert(
            "backlog",
            "select b.basket, b.depth from "
            "[select * from sys.baskets where depth > 3] as b",
            callback=lambda r, rows: fired.append(rows),
        )
        # window 1: sustained breach alerts exactly once
        cell.insert("sensors", [(i, 1.0) for i in range(5)])
        self.breach(cell, clock)
        assert rule.firings == 1
        # condition clears
        cell.basket("sensors").consume_all()
        self.breach(cell, clock)
        assert rule.firings == 1
        # window 2: a fresh breach alerts again
        cell.insert("sensors", [(i, 1.0) for i in range(5)])
        self.breach(cell, clock)
        assert rule.firings == 2
        assert len(fired) == 2
        assert rule.last_rows[0][0] == "sensors"

    def test_firings_recorded_in_sys_events_and_metrics(self):
        cell, clock = build_cell()
        cell.add_alert(
            "backlog",
            "select b.basket from "
            "[select * from sys.baskets where depth > 3] as b",
        )
        cell.insert("sensors", [(i, 1.0) for i in range(5)])
        self.breach(cell, clock)
        events = cell.query(
            "select kind, component from sys.events where kind = 'alert'"
        )
        assert events == [("alert", "backlog")]
        assert cell.metrics.value(
            "datacell_alerts_fired_total", ("backlog",)
        ) == 1

    def test_requires_system_streams(self):
        cell = DataCell(metrics=MetricsRegistry())
        with pytest.raises(DataCellError):
            cell.add_alert("x", "select 1")

    def test_duplicate_name_rejected(self):
        cell, _ = build_cell()
        sql = (
            "select b.basket from "
            "[select * from sys.baskets where depth > 3] as b"
        )
        cell.add_alert("dup", sql)
        with pytest.raises(DataCellError):
            cell.add_alert("dup", sql)

    def test_cancel_stops_firing(self):
        cell, clock = build_cell()
        rule = cell.add_alert(
            "backlog",
            "select b.basket from "
            "[select * from sys.baskets where depth > 3] as b",
        )
        rule.cancel()
        assert "backlog" not in cell.sys.alerts
        cell.insert("sensors", [(i, 1.0) for i in range(5)])
        self.breach(cell, clock)
        assert rule.firings == 0

    def test_stats_and_dashboard_sections(self):
        cell, clock = build_cell()
        cell.add_alert(
            "backlog",
            "select b.basket from "
            "[select * from sys.baskets where depth > 3] as b",
        )
        tick(cell, clock)
        stats = cell.stats()
        assert stats["sys"]["samples"] == 1
        assert stats["sys"]["streams"][SYS_METRICS] > 0
        assert stats["sys"]["alerts"] == {"backlog": 0}
        text = cell.render_dashboard()
        assert "System streams" in text
        assert "Alert rules" in text


class TestDurabilityExemption:
    def test_sys_rows_never_enter_the_wal(self, tmp_path):
        clock = LogicalClock()
        cell = DataCell(
            clock=clock,
            metrics=MetricsRegistry(),
            durability=DurabilityConfig(directory=tmp_path / "d"),
            system_streams=SystemStreamsConfig(interval=1.0),
        )
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.insert("sensors", [(1, 45.0)])
        before = cell.durability.wal.records_written
        assert before > 0  # the user insert was logged
        for _ in range(5):
            clock.advance(1.0)
            cell.run_until_quiescent()
        assert cell.sys.samples_taken == 5
        assert cell.basket(SYS_METRICS).count > 0
        assert cell.durability.wal.records_written == before, (
            "sampling must not generate WAL records"
        )
        cell.durability.close()

    def test_checkpoint_excludes_system_baskets(self, tmp_path):
        from repro.durability.checkpoint import load_latest_checkpoint

        clock = LogicalClock()
        cell = DataCell(
            clock=clock,
            metrics=MetricsRegistry(),
            durability=DurabilityConfig(directory=tmp_path / "d"),
            system_streams=SystemStreamsConfig(interval=1.0),
        )
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.insert("sensors", [(1, 45.0)])
        clock.advance(1.0)
        cell.run_until_quiescent()
        cell.checkpoint()
        snapshot = load_latest_checkpoint(cell.durability.checkpoint_dir)
        assert "sensors" in snapshot.baskets
        assert not any(is_system_name(n) for n in snapshot.baskets)
        cell.durability.close()


class TestTailRows:
    def test_shape_and_limit(self):
        cell, clock = build_cell()
        tick(cell, clock)
        basket = cell.basket(SYS_METRICS)
        columns, rows = tail_rows(basket, 3)
        assert columns[:5] == ["metric", "labels", "kind", "value", "delta"]
        assert "dc_time" in columns
        assert len(rows) == 3
        assert all(len(r) == len(columns) for r in rows)

    def test_limit_beyond_depth(self):
        cell, clock = build_cell()
        tick(cell, clock)
        basket = cell.basket(SYS_EVENTS)
        columns, rows = tail_rows(basket, 100)
        assert rows == []


def test_system_basket_constructor_rejects_duplicates():
    from repro.kernel.types import AtomType

    cell, _ = build_cell()
    with pytest.raises(DataCellError):
        cell._create_system_basket(SYS_METRICS, [("v", AtomType.INT)], 4)
