"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    default_registry,
    set_default_registry,
)


def hammer(fn, threads=8, iterations=10_000):
    """Run ``fn`` from N threads concurrently; a barrier maximizes overlap."""
    barrier = threading.Barrier(threads)

    def work():
        barrier.wait()
        for _ in range(iterations):
            fn()

    pool = [threading.Thread(target=work) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)

    def test_thread_safety_exact_total(self):
        c = Counter()
        hammer(c.inc)
        assert c.value == 8 * 10_000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_set_max_ratchets(self):
        g = Gauge()
        g.set_max(5)
        g.set_max(3)
        assert g.value == 5
        g.set_max(9)
        assert g.value == 9

    def test_thread_safety_exact_total(self):
        g = Gauge()
        hammer(lambda: g.inc(1))
        assert g.value == 8 * 10_000


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram(buckets=[1, 10, 100])
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        snap = h.snapshot()
        assert snap["min"] == 0.5
        assert snap["max"] == 500

    def test_empty_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_needs_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=[])

    def test_percentile_range_check(self):
        with pytest.raises(ObservabilityError):
            Histogram().percentile(101)

    def test_percentile_against_numpy(self):
        # Percentiles are bucket-interpolated: accuracy is bounded by the
        # width of the containing bucket, so compare within that tolerance.
        rng = np.random.default_rng(7)
        values = rng.uniform(1e-4, 0.5, size=5_000)
        h = Histogram()  # default LATENCY_BUCKETS
        h.observe_many(values)
        for q in (50, 95, 99):
            exact = float(np.percentile(values, q))
            est = h.percentile(q)
            idx = np.searchsorted(LATENCY_BUCKETS, exact)
            lo = LATENCY_BUCKETS[idx - 1] if idx > 0 else 0.0
            hi = LATENCY_BUCKETS[min(idx, len(LATENCY_BUCKETS) - 1)]
            width = hi - lo
            assert abs(est - exact) <= width, f"p{q}: {est} vs {exact}"

    def test_percentile_clamped_to_observed(self):
        h = Histogram(buckets=[1.0])
        h.observe(0.25)
        h.observe(0.75)
        assert 0.25 <= h.percentile(50) <= 0.75
        assert h.percentile(100) == 0.75

    def test_observe_many_matches_observe(self):
        a, b = Histogram(), Histogram()
        values = [1e-4, 3e-3, 0.02, 0.9, 20.0]
        for v in values:
            a.observe(v)
        b.observe_many(np.asarray(values))
        assert a.bucket_counts() == b.bucket_counts()
        assert a.snapshot() == b.snapshot()

    def test_observe_many_empty(self):
        h = Histogram()
        h.observe_many(np.asarray([]))
        assert h.count == 0

    def test_thread_safety_exact_count(self):
        h = Histogram(buckets=[1, 2, 3])
        hammer(lambda: h.observe(1.5))
        assert h.count == 8 * 10_000
        assert h.bucket_counts()[1][1] == 8 * 10_000

    def test_bucket_counts_cumulative_inf(self):
        h = Histogram(buckets=[1, 10])
        for v in (0.5, 5, 50):
            h.observe(v)
        assert h.bucket_counts() == [(1, 1), (10, 2), (float("inf"), 3)]


class TestPercentileAccuracyContract:
    """Pins the error bounds documented on ``Histogram.percentile``.

    The estimator interpolates linearly inside the containing bucket, so
    its absolute error is bounded by that bucket's width; mass piled at a
    bucket's lower edge biases the estimate upward but never out of the
    bucket; and everything past the largest finite bound degrades to the
    observed max.
    """

    @pytest.mark.parametrize("q", [50, 99])
    def test_error_bounded_by_bucket_width_skewed(self, q):
        # a heavy-tailed distribution stresses the sparse upper buckets,
        # where the bound is loosest — it must still hold
        rng = np.random.default_rng(11)
        values = np.minimum(rng.lognormal(-4.0, 1.5, size=8_000), 50.0)
        h = Histogram()  # default LATENCY_BUCKETS
        h.observe_many(values)
        exact = float(np.percentile(values, q))
        est = h.percentile(q)
        idx = np.searchsorted(LATENCY_BUCKETS, exact)
        lo = LATENCY_BUCKETS[idx - 1] if idx > 0 else 0.0
        hi = LATENCY_BUCKETS[min(idx, len(LATENCY_BUCKETS) - 1)]
        assert abs(est - exact) <= hi - lo, f"p{q}: {est} vs {exact}"

    def test_lower_edge_mass_biases_upward_within_bucket(self):
        # 99 observations at a bucket's lower edge plus one at its upper
        # bound: the true p50 is 1.0, but uniform-within-bucket
        # interpolation drags the estimate toward the upper bound.  The
        # bias must stay inside the (1.0, 10.0] bucket.
        h = Histogram(buckets=[1.0, 10.0])
        h.observe_many([1.0 + 1e-9] * 99 + [10.0])
        true_p50 = 1.0
        est = h.percentile(50)
        assert est > true_p50 + 1.0  # visibly biased upward...
        assert 1.0 < est <= 10.0  # ...but never leaves the bucket
        assert est - true_p50 <= 10.0 - 1.0  # bound = bucket width

    def test_upper_edge_mass_biases_downward_within_bucket(self):
        h = Histogram(buckets=[1.0, 10.0])
        h.observe_many([10.0 - 1e-9] * 99 + [1.5])
        est = h.percentile(50)
        assert est < 10.0 - 1e-9  # biased downward
        assert 1.0 < est <= 10.0  # still inside the bucket

    def test_inf_bucket_interpolates_toward_observed_max(self):
        # the +Inf bucket has no upper bound, so the observed max stands
        # in for it: estimates stay within [min, max] of the open tail,
        # and the error bound widens to that whole tail
        h = Histogram(buckets=[1.0, 10.0])
        h.observe_many([20.0, 30.0, 40.0, 400.0])
        for q in (1, 50, 99):
            assert 20.0 <= h.percentile(q) <= 400.0
        assert h.percentile(100) == 400.0
        # the estimates are monotone in q even with no bucket structure
        assert h.percentile(50) <= h.percentile(99)


class TestRegistry:
    def test_labels_isolated(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", "hits", ("who",))
        fam.labels("a").inc(2)
        fam.labels("b").inc(3)
        assert reg.value("hits_total", ("a",)) == 2
        assert reg.value("hits_total", ("b",)) == 3

    def test_label_arity_checked(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", labels=("x",))
        with pytest.raises(ObservabilityError):
            fam.labels("a", "b")

    def test_labelless_delegation(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(4)
        assert reg.value("n_total") == 4

    def test_reregistration_same_kind_ok(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("l",))
        b = reg.counter("x_total", labels=("l",))
        assert a is b

    def test_reregistration_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("x_total")

    def test_value_unknown_is_none(self):
        reg = MetricsRegistry()
        assert reg.value("nope") is None
        assert reg.histogram_snapshot("nope") is None

    def test_collect_shape(self):
        reg = MetricsRegistry()
        reg.gauge("depth", "d", ("basket",)).labels("b1").set(7)
        out = reg.collect()
        assert out["depth"]["kind"] == "gauge"
        assert out["depth"]["samples"][("b1",)]["value"] == 7

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        assert c is NULL_INSTRUMENT
        c.inc()
        c.labels("a").observe(1)  # all absorb silently
        assert reg.value("x_total") is None
        assert reg.to_prometheus_text() == ""

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", ("code",)).labels("200").inc(5)
        reg.gauge("temp").set(1.5)
        text = reg.to_prometheus_text()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 5' in text
        assert "# TYPE temp gauge" in text
        assert "temp 1.5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus_text()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("q",)).labels('a"b\\c').inc()
        text = reg.to_prometheus_text()
        assert r'c_total{q="a\"b\\c"} 1' in text

    def test_label_newline_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("q",)).labels("line1\nline2").inc()
        text = reg.to_prometheus_text()
        assert r'c_total{q="line1\nline2"} 1' in text
        # escaping must keep the exposition line-oriented: no sample line
        # may be split by a raw label newline
        assert "line1\nline2" not in text

    def test_label_escape_order_backslash_first(self):
        # a pre-escaped-looking value must round-trip: \n in the input is
        # backslash+n, not a newline, and must render as \\n
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("q",)).labels("a\\nb").inc()
        text = reg.to_prometheus_text()
        assert 'c_total{q="a\\\\nb"} 1' in text

    def test_help_text_escaping(self):
        reg = MetricsRegistry()
        reg.counter(
            "c_total", "first line\nsecond \\ line", ("l",)
        ).labels("x").inc()
        text = reg.to_prometheus_text()
        assert r"# HELP c_total first line\nsecond \\ line" in text
        for line in text.splitlines():
            if line.startswith("# HELP"):
                assert "second" in line  # HELP stayed a single line

    def test_help_quotes_stay_verbatim(self):
        # per the text format, double quotes are only escaped inside
        # label values, not HELP text
        reg = MetricsRegistry()
        reg.counter("c_total", 'the "hot" path', ("l",)).labels("x").inc()
        text = reg.to_prometheus_text()
        assert '# HELP c_total the "hot" path' in text

    def test_empty_family_omitted(self):
        reg = MetricsRegistry()
        reg.counter("never_used_total", "unused", ("l",))
        assert "never_used_total" not in reg.to_prometheus_text()

    def test_help_and_type_once_per_family(self):
        # many children must not repeat the family header: exactly one
        # HELP and one TYPE line no matter how many label values exist
        reg = MetricsRegistry()
        fam = reg.counter("req_total", "requests", ("code",))
        for code in ("200", "404", "500"):
            fam.labels(code).inc()
        lines = reg.to_prometheus_text().splitlines()
        assert lines.count("# HELP req_total requests") == 1
        assert lines.count("# TYPE req_total counter") == 1
        samples = [ln for ln in lines if ln.startswith("req_total{")]
        assert len(samples) == 3

    def test_help_and_type_once_per_histogram_family(self):
        # histograms fan each child out into bucket/sum/count samples,
        # which must all share a single family header
        reg = MetricsRegistry()
        fam = reg.histogram(
            "lat_seconds", "latency", ("op",), buckets=[0.1, 1.0]
        )
        fam.labels("read").observe(0.05)
        fam.labels("write").observe(0.5)
        lines = reg.to_prometheus_text().splitlines()
        assert lines.count("# HELP lat_seconds latency") == 1
        assert lines.count("# TYPE lat_seconds histogram") == 1
        assert sum(ln.startswith("lat_seconds_bucket{") for ln in lines) == 6
        assert sum(ln.startswith("lat_seconds_sum{") for ln in lines) == 2
        assert sum(ln.startswith("lat_seconds_count{") for ln in lines) == 2

    def test_headers_precede_their_samples(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "the a counter").inc()
        reg.gauge("b", "the b gauge").set(2)
        lines = reg.to_prometheus_text().splitlines()
        for name in ("a_total", "b"):
            help_i = next(
                i for i, ln in enumerate(lines)
                if ln.startswith(f"# HELP {name} ")
            )
            assert lines[help_i + 1].startswith(f"# TYPE {name} ")
            assert lines[help_i + 2].startswith(name)

class TestCardinalityGuard:
    def test_cap_drops_new_label_sets(self):
        import warnings

        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("churn_total", "", ("who",))
        counter.labels("a").inc()
        counter.labels("b").inc()
        with pytest.warns(RuntimeWarning, match="cardinality cap"):
            dropped = counter.labels("c")
        assert dropped is NULL_INSTRUMENT
        dropped.inc(100)  # absorbed, never recorded
        assert registry.value("churn_total", ("c",)) is None
        # existing label sets keep working at the cap
        counter.labels("a").inc()
        assert registry.value("churn_total", ("a",)) == 2
        # the warning is emitted once per family, not once per drop
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            counter.labels("d")

    def test_default_cap_is_roomy(self):
        registry = MetricsRegistry()
        counter = registry.counter("ok_total", "", ("who",))
        for i in range(100):
            counter.labels(str(i)).inc()
        assert len(counter.children()) == 100
