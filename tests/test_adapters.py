"""Tests for replay sources, generators, and the TCP adapters."""

import socket
import time

import pytest

from repro.adapters.channels import InMemoryChannel
from repro.adapters.generators import (
    gaussian_doubles,
    network_packets,
    sensor_readings,
    stock_ticks,
    uniform_ints,
    zipf_ints,
)
from repro.adapters.replay import ReplaySource, load_csv_rows
from repro.adapters.tcpio import TcpEgressClient, TcpIngressServer
from repro.core.clock import LogicalClock
from repro.errors import AdapterError


class TestReplay:
    def make(self, clock=None):
        events = [(0.0, (1,)), (1.0, (2,)), (2.0, (3,)), (2.0, (4,))]
        channel = InMemoryChannel()
        return ReplaySource(events, channel, clock), channel

    def test_requires_time_order(self):
        with pytest.raises(AdapterError):
            ReplaySource([(2.0, (1,)), (1.0, (2,))], InMemoryChannel())

    def test_pump_all(self):
        source, channel = self.make()
        assert source.pump_all() == 4
        assert channel.pending() == 4
        assert source.exhausted

    def test_pump_batch(self):
        source, channel = self.make()
        assert source.pump_batch(2) == 2
        assert source.remaining == 2

    def test_paced_pump(self):
        clock = LogicalClock()
        source, channel = self.make(clock)
        assert source.pump() == 1  # t=0 event
        clock.advance(1.0)
        assert source.pump() == 1
        clock.advance(5.0)
        assert source.pump() == 2
        assert source.pump() == 0

    def test_pump_with_explicit_time(self):
        source, channel = self.make()
        assert source.pump(now=1.5) == 2

    def test_pump_needs_clock_or_time(self):
        source, _ = self.make()
        with pytest.raises(AdapterError):
            source.pump()

    def test_next_timestamp(self):
        source, _ = self.make()
        assert source.next_timestamp() == 0.0
        source.pump_all()
        assert source.next_timestamp() is None

    def test_load_csv_from_text(self):
        rows = load_csv_rows("a,b\n1,2\n3,4\n", from_text=True)
        assert rows == [["1", "2"], ["3", "4"]]

    def test_load_csv_no_header(self):
        rows = load_csv_rows("1,2\n", from_text=True, has_header=False)
        assert rows == [["1", "2"]]


class TestGenerators:
    def test_deterministic_under_seed(self):
        assert uniform_ints(10, seed=1) == uniform_ints(10, seed=1)
        assert stock_ticks(10, seed=2) == stock_ticks(10, seed=2)

    def test_uniform_bounds(self):
        for (v,) in uniform_ints(200, low=5, high=9, seed=3):
            assert 5 <= v <= 9

    def test_zipf_is_skewed(self):
        from collections import Counter

        counts = Counter(v for (v,) in zipf_ints(3000, n_values=100, seed=4))
        most = counts.most_common(1)[0][1]
        assert most > 3000 / 100 * 3, "head key far above uniform share"

    def test_gaussian_shape(self):
        values = [v for (v,) in gaussian_doubles(2000, mean=10, stddev=1, seed=5)]
        mean = sum(values) / len(values)
        assert 9.5 < mean < 10.5

    def test_sensor_readings_have_anomalies(self):
        rows = sensor_readings(2000, anomaly_rate=0.05, seed=6)
        hot = [t for _, t in rows if t > 35.0]
        assert 20 < len(hot) < 300

    def test_stock_ticks_structure(self):
        for sym, price, qty in stock_ticks(50, seed=7):
            assert isinstance(sym, str) and price > 0 and qty >= 1

    def test_network_packets_suspicious_rate(self):
        rows = network_packets(3000, attack_rate=0.02, seed=8)
        bad = [r for r in rows if r[2] == 31337]
        assert 20 < len(bad) < 150


class TestTcp:
    def test_ingress_to_channel(self):
        server = TcpIngressServer()
        server.start()
        try:
            with socket.create_connection(server.address, timeout=5) as sock:
                sock.sendall(b"1,2.5\n3,4.5\n")
            deadline = time.time() + 5
            while server.channel.pending() < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert server.channel.poll() == ["1,2.5", "3,4.5"]
        finally:
            server.stop()

    def test_ingress_partial_lines_buffered(self):
        server = TcpIngressServer()
        server.start()
        try:
            with socket.create_connection(server.address, timeout=5) as sock:
                sock.sendall(b"1,")
                time.sleep(0.05)
                sock.sendall(b"2\n")
            deadline = time.time() + 5
            while server.channel.pending() < 1 and time.time() < deadline:
                time.sleep(0.01)
            assert server.channel.poll() == ["1,2"]
        finally:
            server.stop()

    def test_egress_roundtrip(self):
        server = TcpIngressServer()
        server.start()
        try:
            client = TcpEgressClient(*server.address)
            client([(1, "a"), (2, "b")])
            deadline = time.time() + 5
            while server.channel.pending() < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert server.channel.poll() == ["1,a", "2,b"]
            assert client.rows_sent == 2
            client.close()
        finally:
            server.stop()

    def test_double_start_rejected(self):
        server = TcpIngressServer()
        server.start()
        try:
            with pytest.raises(AdapterError):
                server.start()
        finally:
            server.stop()
