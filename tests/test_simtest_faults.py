"""Fault injection: channel faults, injected exceptions, observability.

Two layers under test: :class:`FaultableChannel` must implement each
batch fault exactly (and keep the post-fault ``delivered`` ground
truth), and injected transition exceptions must flow through the same
paths a real crash would — ``Scheduler.on_exception``, the trace log's
``error`` events, and the flight recorder.
"""

import pytest

from repro.adapters.channels import InMemoryChannel
from repro.core.clock import VirtualClock
from repro.errors import DataCellError
from repro.obs.flightrec import FlightRecorder
from repro.simtest import EpisodeSpec, FaultPlan, FaultableChannel
from repro.simtest.oracle import check_episode, run_streaming

ROWS = tuple((i % 30, i % 9) for i in range(36))


def make_channel(plan, clock=None):
    return FaultableChannel(
        InMemoryChannel("wire"), plan, clock or VirtualClock()
    )


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=3, batch_fault_rate=0.5, exception_rate=0.5)
        b = FaultPlan(seed=3, batch_fault_rate=0.5, exception_rate=0.5)
        decisions_a = [a.batch_action("wire", 4) for _ in range(20)]
        decisions_a += [a.should_raise("f") for _ in range(20)]
        decisions_b = [b.batch_action("wire", 4) for _ in range(20)]
        decisions_b += [b.should_raise("f") for _ in range(20)]
        assert decisions_a == decisions_b
        assert a.log == b.log

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=1)
        assert all(
            plan.batch_action("wire", 3) is None for _ in range(50)
        )
        assert not any(plan.should_raise("f") for _ in range(50))
        assert plan.log == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataCellError):
            FaultPlan(kinds=("drop", "corrupt"))


class TestFaultableChannel:
    def test_drop_loses_the_batch_on_both_sides(self):
        channel = make_channel(
            FaultPlan(seed=0, batch_fault_rate=1.0, kinds=("drop",))
        )
        channel.push_many([(1, 1), (2, 2)])
        assert channel.poll() == []
        assert channel.delivered == []

    def test_duplicate_delivers_twice(self):
        channel = make_channel(
            FaultPlan(seed=0, batch_fault_rate=1.0, kinds=("duplicate",))
        )
        channel.push_many([(1, 1), (2, 2)])
        assert channel.poll() == [(1, 1), (2, 2), (1, 1), (2, 2)]
        assert channel.delivered == [(1, 1), (2, 2), (1, 1), (2, 2)]

    def test_reorder_permutes_within_the_batch(self):
        channel = make_channel(
            FaultPlan(seed=1, batch_fault_rate=1.0, kinds=("reorder",))
        )
        batch = [(i, i) for i in range(8)]
        channel.push_many(batch)
        polled = channel.poll()
        assert polled != batch  # seed 1 does shuffle this batch
        assert sorted(polled) == batch
        assert channel.delivered == polled

    def test_delay_holds_until_virtual_release(self):
        clock = VirtualClock()
        plan = FaultPlan(
            seed=0, batch_fault_rate=1.0, kinds=("delay",), delay_seconds=2.0
        )
        channel = make_channel(plan, clock)
        channel.push_many([(5, 5)])
        assert channel.poll() == []
        assert channel.delayed_batches() == 1
        assert channel.next_release() == clock.now() + 2.0
        clock.advance(2.0)
        assert channel.poll() == [(5, 5)]
        assert channel.delivered == [(5, 5)]
        assert channel.next_release() == float("inf")

    def test_pending_counts_due_delayed_batches(self):
        clock = VirtualClock()
        plan = FaultPlan(
            seed=0, batch_fault_rate=1.0, kinds=("delay",), delay_seconds=1.0
        )
        channel = make_channel(plan, clock)
        channel.push_many([(1, 1), (2, 2)])
        channel.poll()
        assert channel.pending() == 0  # held, not yet due
        clock.advance(1.0)
        assert channel.pending() == 2


class TestInjectedExceptions:
    def build(self, exception_rate=0.5):
        spec = EpisodeSpec(
            seed=4, rows=ROWS, policy="random", exception_rate=exception_rate
        )
        return run_streaming(spec)

    def test_exceptions_injected_and_pipeline_still_correct(self):
        outcome = self.build()
        assert outcome.episode.injected_exceptions > 0
        assert (
            sum(1 for r in outcome.faults.log if r.kind == "raise")
            == outcome.episode.injected_exceptions
        )
        # the differential still holds: a crash delays work, never eats it
        result = check_episode(
            EpisodeSpec(
                seed=4, rows=ROWS, policy="random", exception_rate=0.5
            )
        )
        assert result.ok, result.explain()

    def test_on_exception_hook_and_flight_recorder_fire(self):
        from repro.adapters.channels import InMemoryChannel as Chan
        from repro.core.engine import DataCell
        from repro.obs.metrics import MetricsRegistry
        from repro.simtest import InputEvent, SimScheduler
        from repro.kernel.types import AtomType

        metrics = MetricsRegistry(enabled=False)
        sim = SimScheduler(
            seed=4,
            policy="random",
            faults=FaultPlan(seed=4, exception_rate=0.9),
            metrics=metrics,
        )
        cell = DataCell(clock=sim.clock, scheduler=sim, metrics=metrics)
        cell.create_basket(
            "feed", [("a", AtomType.INT), ("b", AtomType.INT)]
        )
        channel = Chan("wire")
        cell.add_receptor("tap", ["feed"], channel=channel)
        sim.bind_channel("wire", channel)
        cell.submit_continuous(
            "select x.a from [select * from feed where feed.a > 1] as x"
        )
        recorder = FlightRecorder(cell)
        sim.on_exception = recorder.record_exception
        episode = sim.run_episode(
            [
                InputEvent.make(0.0, "wire", [(i, i) for i in range(30)]),
                InputEvent.make(0.0, "wire", [(i, i) for i in range(30)]),
            ]
        )
        assert episode.injected_exceptions > 0
        assert len(recorder.exceptions) == episode.injected_exceptions
        assert all(
            e["type"] == "InjectedFault" for e in recorder.exceptions
        )
        # the injected crash is attributed to the real victim transition
        victims = {e["transition"] for e in recorder.exceptions}
        assert victims <= {t.name for t in sim.transitions()}
        # and the shared trace saw the same error events
        errors = [e for e in sim.trace.events() if e.kind == "error"]
        assert len(errors) == episode.injected_exceptions
