"""The simulated wire seam: episodes ingesting through the server path.

``EpisodeSpec(via_server=True)`` replaces the episode's receptor with a
:class:`WireIngress` (real frame encode → decode → ingest queue) plus
the real :class:`ServerIngestPump`, so the differential oracle's
streaming ≡ one-shot claim covers the network ingest path — without
sockets, fully deterministic.
"""

import pytest

from repro import DataCell, LogicalClock
from repro.adapters.channels import InMemoryChannel
from repro.kernel.types import AtomType
from repro.server.protocol import Command
from repro.simtest.oracle import EpisodeSpec, check_episode
from repro.simtest.server_episode import attach_server_ingress

ROWS = tuple((v, v % 7) for v in range(-5, 25))


class TestWireIngress:
    def _cell(self):
        cell = DataCell(clock=LogicalClock())
        cell.execute("create basket feed (a int, b int)")
        return cell

    def test_rows_cross_the_wire_seam(self):
        cell = self._cell()
        channel = InMemoryChannel()
        ingress = attach_server_ingress(
            cell, channel, "feed",
            [("a", AtomType.INT), ("b", AtomType.INT)],
        )
        channel.push_many([(1, 2), (3, 4), (5, 6)])
        cell.run_until_quiescent()
        assert cell.basket("feed").total_in == 3
        assert ingress.frames_sent == 1
        assert ingress.decoder.frames_decoded == 1

    def test_pump_acks_each_batch(self):
        cell = self._cell()
        channel = InMemoryChannel()
        ingress = attach_server_ingress(
            cell, channel, "feed",
            [("a", AtomType.INT), ("b", AtomType.INT)],
            batch_size=2,
        )
        channel.push_many([(1, 2), (3, 4), (5, 6)])
        cell.run_until_quiescent()
        assert [m.command for m in ingress.replies] == [Command.ACK] * 2
        assert sorted(m.meta["rows"] for m in ingress.replies) == [1, 2]
        assert [m.meta["seq"] for m in ingress.replies] == [1, 2]

    def test_bad_basket_is_an_error_reply(self):
        cell = self._cell()
        channel = InMemoryChannel()
        ingress = attach_server_ingress(
            cell, channel, "ghost",
            [("a", AtomType.INT), ("b", AtomType.INT)],
        )
        channel.push((1, 2))
        cell.run_until_quiescent()
        assert [m.command for m in ingress.replies] == [Command.ERROR]


@pytest.mark.parametrize("case", ["filter", "passthrough"])
@pytest.mark.parametrize("fault_rate", [0.0, 0.3])
def test_via_server_episodes_match_the_oracle(case, fault_rate):
    spec = EpisodeSpec(
        seed=11,
        rows=ROWS,
        case=case,
        policy="priority",
        batch_size=3,
        batch_fault_rate=fault_rate,
        via_server=True,
    )
    result = check_episode(spec)
    assert result.ok, result.explain()


def test_via_server_starvation_policy():
    """Starving the wire transition stalls ingest without divergence."""
    spec = EpisodeSpec(
        seed=5,
        rows=ROWS,
        case="filter",
        policy="starve:server_wire",
        batch_size=2,
        via_server=True,
    )
    result = check_episode(spec)
    assert result.ok, result.explain()


def test_receptor_and_server_paths_agree():
    """The ingest path is an implementation detail of the claim."""
    for via_server in (False, True):
        spec = EpisodeSpec(
            seed=23,
            rows=ROWS,
            case="compound",
            policy="round-robin",
            batch_size=4,
            via_server=via_server,
        )
        result = check_episode(spec)
        assert result.ok, result.explain()
