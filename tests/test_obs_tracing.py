"""Tests for the bounded trace ring and its scheduler integration."""

import threading

import pytest

from repro.core.basket import Basket
from repro.core.factory import CallablePlan, ConsumeMode, Factory, InputBinding
from repro.core.scheduler import Scheduler
from repro.kernel.mal import ResultSet
from repro.kernel.types import AtomType
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceEvent, TraceLog


class TestTraceLog:
    def test_record_and_read(self):
        log = TraceLog()
        log.record("fire", "q1", tuples_in=3, elapsed=0.001)
        (event,) = log.events()
        assert event.kind == "fire"
        assert event.component == "q1"
        assert event.detail["tuples_in"] == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_ring_evicts_oldest(self):
        log = TraceLog(capacity=5)
        for i in range(12):
            log.record("fire", f"t{i}")
        assert len(log) == 5
        assert log.total_recorded == 12
        assert [e.component for e in log.events()] == [
            "t7", "t8", "t9", "t10", "t11",
        ]

    def test_filtering(self):
        log = TraceLog()
        log.record("fire", "a")
        log.record("register", "a")
        log.record("fire", "b")
        assert len(log.events(kind="fire")) == 2
        assert len(log.events(component="a")) == 2
        assert len(log.events(kind="fire", component="a")) == 1

    def test_clear(self):
        log = TraceLog()
        log.record("fire", "a")
        log.clear()
        assert len(log) == 0
        assert log.total_recorded == 1  # lifetime count survives

    def test_render(self):
        log = TraceLog()
        assert log.render() == "(trace empty)"
        log.record("fire", "q1", elapsed=0.25)
        text = log.render()
        assert "fire" in text and "q1" in text and "elapsed=0.25" in text

    def test_event_render_formats_floats(self):
        event = TraceEvent(1.0, "fire", "q", {"elapsed": 0.123456789})
        assert "elapsed=0.123457" in event.render()

    def test_concurrent_record(self):
        log = TraceLog(capacity=1000)
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(500):
                log.record("fire", "t")

        pool = [threading.Thread(target=work) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert len(log) == 1000  # ring stayed bounded under contention


def passthrough_network(trace):
    """in -> copy factory -> out, driven by a private scheduler."""
    metrics = MetricsRegistry()
    b_in = Basket("b_in", [("v", AtomType.INT)], metrics=metrics)
    b_out = Basket("b_out", [("v", AtomType.INT)], metrics=metrics)

    def copy(snapshots):
        snap = snapshots["b_in"]
        names = [n for n in snap.names if n != "dc_time"]
        return {"b_out": ResultSet(names, [snap.column(n) for n in names])}

    factory = Factory(
        "copy",
        CallablePlan(copy, name="copy"),
        [InputBinding(b_in, ConsumeMode.ALL)],
        [b_out],
        metrics=metrics,
    )
    scheduler = Scheduler(metrics=metrics, trace=trace)
    scheduler.register(factory)
    return scheduler, b_in, b_out


class TestSchedulerTraceIntegration:
    def test_register_and_fire_traced(self):
        trace = TraceLog()
        scheduler, b_in, _ = passthrough_network(trace)
        assert [e.kind for e in trace.events()] == ["register"]
        b_in.insert_rows([(1,), (2,)])
        scheduler.run_until_quiescent()
        fires = trace.events(kind="fire", component="copy")
        assert len(fires) == 1
        assert fires[0].detail["tuples_in"] == 2
        assert fires[0].detail["elapsed"] > 0

    def test_unregister_traced(self):
        trace = TraceLog()
        scheduler, _, _ = passthrough_network(trace)
        scheduler.unregister("copy")
        assert [e.kind for e in trace.events()] == ["register", "unregister"]

    def test_threaded_mode_traces_fires(self):
        trace = TraceLog()
        scheduler, b_in, b_out = passthrough_network(trace)
        b_in.insert_rows([(i,) for i in range(10)])
        scheduler.start()
        try:
            deadline = 100
            while b_out.total_in < 10 and deadline:
                deadline -= 1
                import time

                time.sleep(0.01)
        finally:
            scheduler.stop()
        assert b_out.total_in == 10
        assert len(trace.events(kind="fire", component="copy")) >= 1
