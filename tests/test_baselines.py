"""Tests for the baseline comparators (tuple engine, naive re-eval)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MapOperator,
    NaiveReEvalWindow,
    ProjectOperator,
    SelectOperator,
    TupleEngine,
    WindowAggregateOperator,
)
from repro.errors import DataCellError


class TestOperators:
    def test_select(self):
        engine = TupleEngine()
        sink = engine.register(
            "q", SelectOperator(lambda row: row[0] > 10)
        )
        engine.push_many([(5,), (15,), (25,)])
        assert sink.rows == [(15,), (25,)]

    def test_project(self):
        engine = TupleEngine()
        head = SelectOperator(lambda row: True)
        head.then(ProjectOperator([1]))
        sink = engine.register("q", head)
        engine.push((1, "x"))
        assert sink.rows == [("x",)]

    def test_map(self):
        engine = TupleEngine()
        sink = engine.register("q", MapOperator(lambda r: (r[0] * 2,)))
        engine.push((21,))
        assert sink.rows == [(42,)]

    def test_chaining_counts_per_stage(self):
        head = SelectOperator(lambda r: r[0] % 2 == 0)
        project = ProjectOperator([0])
        head.then(project)
        engine = TupleEngine()
        engine.register("q", head)
        engine.push_many([(i,) for i in range(10)])
        assert head.tuples_seen == 10
        assert project.tuples_seen == 5

    def test_every_pipeline_sees_every_tuple(self):
        """The tuple-at-a-time model: each event hits each query."""
        engine = TupleEngine()
        a = SelectOperator(lambda r: True)
        b = SelectOperator(lambda r: False)
        engine.register("a", a)
        engine.register("b", b)
        engine.push_many([(1,), (2,)])
        assert a.tuples_seen == b.tuples_seen == 2

    def test_duplicate_pipeline_rejected(self):
        engine = TupleEngine()
        engine.register("q", SelectOperator(lambda r: True))
        with pytest.raises(DataCellError):
            engine.register("q", SelectOperator(lambda r: True))

    def test_unknown_results(self):
        with pytest.raises(DataCellError):
            TupleEngine().results("ghost")


class TestWindowOperator:
    def test_grouped_sliding_sum(self):
        engine = TupleEngine()
        sink = engine.register(
            "w", WindowAggregateOperator(0, 1, size=2, slide=2, aggregate="sum")
        )
        engine.push_many(
            [("a", 1), ("a", 2), ("b", 10), ("a", 3), ("a", 4), ("b", 20)]
        )
        assert ("a", 3.0) in sink.rows
        assert ("a", 7.0) in sink.rows
        assert ("b", 30.0) in sink.rows

    def test_bad_aggregate(self):
        with pytest.raises(DataCellError):
            WindowAggregateOperator(0, 1, 2, 2, aggregate="median")


class TestNaiveReEval:
    def test_geometry_validation(self):
        with pytest.raises(DataCellError):
            NaiveReEvalWindow(0, 1)
        with pytest.raises(DataCellError):
            NaiveReEvalWindow(5, 10)
        with pytest.raises(DataCellError):
            NaiveReEvalWindow(5, 5, aggregate="weird")

    def test_tumbling_sum(self):
        w = NaiveReEvalWindow(3, 3, "sum")
        emitted = [w.insert(v) for v in [1, 2, 3, 4, 5, 6]]
        assert [e for e in emitted if e is not None] == [6.0, 15.0]

    def test_sliding_window(self):
        w = NaiveReEvalWindow(3, 1, "max")
        for v in [5, 1, 4, 2, 9]:
            w.insert(v)
        # windows: [5,1,4] -> 5, [1,4,2] -> 4, [4,2,9] -> 9
        assert w.results == [5.0, 4.0, 9.0]

    def test_work_counter_grows_quadratically_vs_incremental(self):
        """The W1 claim, on the baselines: full rescan cost = windows*size."""
        w = NaiveReEvalWindow(50, 1, "sum")
        for v in range(200):
            w.insert(v)
        emissions = len(w.results)
        assert w.values_processed == emissions * 50

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), max_size=80),
        st.integers(1, 10),
        st.data(),
    )
    def test_agrees_with_datacell_incremental(self, values, size, data):
        """The naive baseline and the DataCell incremental plan agree."""
        slide = data.draw(st.integers(1, size))
        from repro.core.basket import Basket
        from repro.core.clock import LogicalClock
        from repro.core.factory import ConsumeMode, Factory, InputBinding
        from repro.core.windows import (
            IncrementalWindowAggregatePlan,
            WindowMode,
            WindowSpec,
        )
        from repro.kernel.types import AtomType

        naive = NaiveReEvalWindow(size, slide, "sum")
        for v in values:
            naive.insert(v)

        clock = LogicalClock()
        inp = Basket("i", [("v", AtomType.DBL)], clock)
        plan = IncrementalWindowAggregatePlan(
            "i", "v", ["sum"], WindowSpec(WindowMode.COUNT, size, slide), "o"
        )
        out = Basket("o", plan.output_schema(), clock)
        f = Factory("w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out])
        if values:
            inp.insert_rows([(v,) for v in values])
            f.activate()
        datacell = [r[1] for r in out.rows()]
        # NaiveReEvalWindow emits its first window after `size` tuples and
        # then every `slide`; the DataCell plan uses origin-aligned windows
        # [k*slide, k*slide+size) — identical sequences.
        assert len(datacell) == len(naive.results)
        for a, b in zip(datacell, naive.results):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-9)
