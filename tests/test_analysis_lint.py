"""Engine-invariant linter: rule firing, approved seams, suppression."""

import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import RULES, lint_file, lint_paths

SRC = Path(__file__).resolve().parent.parent / "src"


def _lint_snippet(tmp_path, code, relname="repro/core/sample.py"):
    path = tmp_path / relname
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code)
    return lint_file(path, tmp_path)


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "import time\nstamp = time.time()\n"
        )
        assert [f.rule for f in findings] == ["wall-clock"]
        assert findings[0].line == 2

    def test_datetime_now_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import datetime\nnow = datetime.datetime.now()\n",
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_monotonic_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import time\na = time.monotonic()\nb = time.perf_counter()\n",
        )
        assert findings == []

    def test_clock_seam_approved(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import time\nstamp = time.time()\n",
            relname="repro/core/clock.py",
        )
        assert findings == []

    def test_simtest_approved(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import time\nstamp = time.time()\n",
            relname="repro/simtest/harness.py",
        )
        assert findings == []


class TestGlobalRandom:
    def test_module_level_random_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, "import random\nx = random.randint(0, 3)\n"
        )
        assert [f.rule for f in findings] == ["global-random"]

    def test_seeded_instance_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import random\nrng = random.Random(42)\nx = rng.randint(0, 3)\n",
        )
        assert findings == []

    def test_numpy_global_flagged_default_rng_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "bad = np.random.rand()\n"
            "ok = np.random.default_rng(7)\n",
        )
        assert [f.rule for f in findings] == ["global-random"]
        assert findings[0].line == 2


class TestBareLock:
    def test_bare_acquire_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def f(basket):\n"
            "    basket.lock.acquire()\n"
            "    basket.lock.release()\n",
        )
        assert [f.rule for f in findings] == ["bare-lock", "bare-lock"]

    def test_with_statement_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def f(basket):\n    with basket.lock:\n        pass\n",
        )
        assert findings == []

    def test_factory_approved(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def f(b):\n    b.lock.acquire()\n",
            relname="repro/core/factory.py",
        )
        assert findings == []


class TestLockOrder:
    def test_unsorted_multi_acquire_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def cut(baskets):\n"
            "    for b in baskets:\n"
            "        b.lock.acquire()\n",
            relname="repro/core/factory.py",  # bare-lock approved there
        )
        assert [f.rule for f in findings] == ["lock-order"]

    def test_sorted_iterable_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def cut(baskets):\n"
            "    ordered = sorted(baskets, key=lambda b: b.name.lower())\n"
            "    for b in ordered:\n"
            "        b.lock.acquire()\n",
            relname="repro/core/factory.py",
        )
        assert findings == []

    def test_lock_order_helper_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def cut(self):\n"
            "    for b in self._lock_order():\n"
            "        b.lock.acquire()\n",
            relname="repro/core/factory.py",
        )
        assert findings == []


class TestSysName:
    def test_reserved_name_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def setup(cell):\n"
            "    cell.create_basket('sys.shadow', [])\n",
        )
        assert [f.rule for f in findings] == ["sys-name"]

    def test_sysstreams_module_approved(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def setup(cell):\n"
            "    cell.create_basket('sys.metrics', [])\n",
            relname="repro/obs/sysstreams.py",
        )
        assert findings == []

    def test_ordinary_names_allowed(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "def setup(cell):\n    cell.create_basket('trades', [])\n",
        )
        assert findings == []


class TestSuppression:
    def test_line_suppression(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import time\n"
            "a = time.time()  # dc-lint: disable=wall-clock\n"
            "b = time.time()\n",
        )
        assert [(f.rule, f.line) for f in findings] == [("wall-clock", 3)]

    def test_line_suppression_is_rule_specific(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "import time\n"
            "a = time.time()  # dc-lint: disable=global-random\n",
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_file_suppression_one_rule(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "# dc-lint: disable-file=wall-clock\n"
            "import time, random\n"
            "a = time.time()\n"
            "b = random.random()\n",
        )
        assert [f.rule for f in findings] == ["global-random"]

    def test_file_suppression_all_rules(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            "# dc-lint: disable-file\n"
            "import time\na = time.time()\n",
        )
        assert findings == []


class TestDriving:
    def test_src_tree_is_clean(self):
        """The shipped engine passes its own linter — the CI gate."""
        findings = lint_paths([str(SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_select_filters_rules(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("import time\na = time.time()\n")
        findings = lint_paths([str(path)], select={"global-random"})
        assert findings == []

    def test_cli_exit_codes(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\na = time.time()\n")
        env_src = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(bad)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "wall-clock" in proc.stdout
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(good)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0

    def test_rules_all_registered(self):
        names = {rule.name for rule in RULES}
        assert {
            "wall-clock",
            "global-random",
            "bare-lock",
            "lock-order",
            "sys-name",
        } <= names
