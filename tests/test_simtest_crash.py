"""The kill-and-restart differential gate.

Seeded episodes (the same generator the CI job runs) must all pass —
recovered output byte-identical to the uninterrupted run — for plain
continuous queries and COUNT-window aggregates alike, across all fsync
policies and checkpoint cadences.  A deliberately planted
duplicate-delivery bug (high-water suppression disabled) must be
*caught*, proving the differential has teeth.
"""

import pytest

from repro.core.emitter import Emitter
from repro.simtest.crash import (
    CrashSpec,
    check_crash_episode,
    crash_episode_spec,
)

# 4 chunks x 25 = 100 seeded episodes, the acceptance floor; chunking
# keeps per-test wall time visible and failures localized
CHUNK = 25


@pytest.mark.parametrize("chunk", range(4))
def test_seeded_crash_episodes_recover_byte_identically(chunk):
    for index in range(chunk * CHUNK, (chunk + 1) * CHUNK):
        spec = crash_episode_spec(index, base_seed=0)
        result = check_crash_episode(spec)
        assert result.ok, result.explain()


def test_both_query_shapes_and_all_fsync_policies_are_exercised():
    specs = [crash_episode_spec(i, base_seed=0) for i in range(100)]
    cases = {s.case for s in specs}
    assert "window" in cases
    assert len(cases) >= 4
    assert {s.fsync for s in specs} == {"interval", "off", "always"}
    assert any(s.checkpoint_every for s in specs)
    assert any(s.checkpoint_every is None for s in specs)
    # telemetry sampling must be exercised both on and off: the sys.*
    # streams are exempt from WAL and checkpoints, so recovery with
    # sampling enabled is its own failure mode
    assert {s.sampling for s in specs} == {True, False}


def test_explicit_mid_stream_crash_with_checkpoint():
    spec = CrashSpec(
        seed=42,
        rows=tuple((v, v % 7) for v in range(30)),
        case="passthrough",
        policy="priority",
        batch_size=4,
        crash_after=9,
        checkpoint_every=3,
        fsync="always",
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert result.ok, result.explain()
    # the crash landed mid-stream: both phases must have delivered rows
    assert result.pre_crash
    assert result.post_recovery


def test_window_episode_recovers_partial_window_state():
    spec = CrashSpec(
        seed=43,
        rows=tuple((v,) for v in range(25)),
        case="window",
        window=(4, 2),
        window_aggregate="sum",
        policy="round-robin",
        batch_size=3,
        crash_after=8,
        checkpoint_every=4,
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert result.ok, result.explain()


def test_crash_with_telemetry_sampling_is_byte_identical():
    """Sampling fills sys.* baskets that never touch the WAL or the
    checkpoints: user-visible output must be unchanged by their presence
    across a kill-and-restart."""
    spec = CrashSpec(
        seed=45,
        rows=tuple((v, v % 5) for v in range(30)),
        case="passthrough",
        policy="priority",
        batch_size=4,
        crash_after=9,
        checkpoint_every=3,
        fsync="always",
        sampling=True,
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert result.ok, result.explain()
    assert result.pre_crash
    assert result.post_recovery


def test_planted_duplicate_delivery_bug_is_caught(monkeypatch):
    """Disable high-water suppression: replayed rows re-deliver, and the
    differential must flag the duplicates."""
    original = Emitter.activate

    def no_suppression(self):
        self.high_water_seq = -1  # forget everything ever delivered
        return original(self)

    monkeypatch.setattr(Emitter, "activate", no_suppression)
    spec = CrashSpec(
        seed=44,
        rows=tuple((v + 11, 0) for v in range(20)),  # all pass the filter
        case="filter",
        policy="priority",
        batch_size=2,
        crash_after=12,
        checkpoint_every=None,
        fsync="off",
    )
    result = check_crash_episode(spec)
    assert result.crashed
    assert not result.ok
    combined = result.pre_crash + result.post_recovery
    assert len(combined) > len(result.reference)  # duplicates, not loss
