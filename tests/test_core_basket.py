"""Unit and property tests for baskets (the key DataCell structure)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.basket import Basket, TIME_COLUMN
from repro.core.clock import LogicalClock
from repro.errors import BasketError
from repro.kernel.bat import bat_from_values
from repro.kernel.mal import ResultSet
from repro.kernel.types import AtomType


@pytest.fixture
def clock():
    return LogicalClock()


@pytest.fixture
def basket(clock):
    return Basket("b", [("v", AtomType.INT), ("s", AtomType.STR)], clock)


class TestSchema:
    def test_implicit_time_column(self, basket):
        assert basket.schema.has(TIME_COLUMN)
        assert [c.name for c in basket.user_columns] == ["v", "s"]

    def test_reserved_names_rejected(self, clock):
        with pytest.raises(BasketError):
            Basket("b", [("dc_time", AtomType.INT)], clock)
        with pytest.raises(BasketError):
            Basket("b", [("dc_seq", AtomType.INT)], clock)

    def test_is_basket_flag(self, basket):
        assert basket.is_basket


class TestIngest:
    def test_insert_stamps_time(self, basket, clock):
        clock.advance(5.0)
        basket.insert_rows([(1, "x")])
        assert basket.rows() == [(1, "x", 5.0)]

    def test_explicit_timestamp(self, basket):
        basket.insert_rows([(1, "x")], timestamp=9.5)
        assert basket.rows()[0][2] == 9.5

    def test_arity_checked(self, basket):
        with pytest.raises(BasketError):
            basket.insert_rows([(1,)])

    def test_empty_insert_is_noop(self, basket):
        assert basket.insert_rows([]) == 0

    def test_insert_columns(self, basket):
        n = basket.insert_columns(
            {
                "v": np.array([1, 2], dtype=np.int32),
                "s": np.array(["a", "b"], dtype=object),
            }
        )
        assert n == 2 and basket.count == 2

    def test_insert_columns_must_cover_user_schema(self, basket):
        with pytest.raises(BasketError):
            basket.insert_columns({"v": np.array([1], dtype=np.int32)})

    def test_statistics(self, basket):
        basket.insert_rows([(1, "a"), (2, "b")])
        assert basket.total_in == 2
        basket.consume_all()
        assert basket.total_out == 2

    def test_frontier_advances(self, basket):
        assert basket.frontier_seq() == -1
        basket.insert_rows([(1, "a")])
        assert basket.frontier_seq() == 0
        basket.consume_all()
        basket.insert_rows([(2, "b")])
        assert basket.frontier_seq() == 1


class TestSnapshot:
    def test_snapshot_is_rebased_to_zero(self, basket):
        basket.insert_rows([(1, "a"), (2, "b")])
        basket.consume_all()
        basket.insert_rows([(3, "c")])
        snap = basket.snapshot()
        assert snap.count == 1
        assert snap.column("v").hseqbase == 0
        assert snap.seqs.tolist() == [2]

    def test_snapshot_isolated_from_later_inserts(self, basket):
        basket.insert_rows([(1, "a")])
        snap = basket.snapshot()
        basket.insert_rows([(2, "b")])
        assert snap.count == 1

    def test_snapshot_since_seq(self, basket):
        basket.insert_rows([(1, "a"), (2, "b"), (3, "c")])
        snap = basket.snapshot(since_seq=0)
        assert snap.column("v").python_list() == [2, 3]

    def test_unknown_column(self, basket):
        basket.insert_rows([(1, "a")])
        with pytest.raises(BasketError):
            basket.snapshot().column("zzz")


class TestConsumption:
    def test_consume_all(self, basket):
        basket.insert_rows([(1, "a"), (2, "b")])
        assert basket.consume_all() == 2
        assert basket.count == 0

    def test_consume_seqs_partial(self, basket):
        basket.insert_rows([(i, "x") for i in range(5)])
        removed = basket.consume_seqs(np.array([0, 2, 4]))
        assert removed == 3
        assert [r[0] for r in basket.rows()] == [1, 3]

    def test_consume_seqs_empty_is_noop(self, basket):
        basket.insert_rows([(1, "a")])
        assert basket.consume_seqs(np.array([], dtype=np.int64)) == 0

    def test_sequences_survive_partial_consume(self, basket):
        basket.insert_rows([(i, "x") for i in range(4)])
        basket.consume_seqs(np.array([1, 2]))
        snap = basket.snapshot()
        assert snap.seqs.tolist() == [0, 3]

    def test_consume_twice_is_idempotent(self, basket):
        basket.insert_rows([(1, "a")])
        basket.consume_seqs(np.array([0]))
        assert basket.consume_seqs(np.array([0])) == 0


class TestSharedReaders:
    def test_register_and_read(self, basket):
        basket.insert_rows([(1, "a")])
        basket.register_reader("q1")
        snap = basket.read_new("q1")
        assert snap.count == 1

    def test_duplicate_registration(self, basket):
        basket.register_reader("q1")
        with pytest.raises(BasketError):
            basket.register_reader("q1")

    def test_unregistered_reader(self, basket):
        with pytest.raises(BasketError):
            basket.read_new("ghost")

    def test_cursor_advance_hides_seen(self, basket):
        basket.register_reader("q1")
        basket.insert_rows([(1, "a"), (2, "b")])
        snap = basket.read_new("q1")
        basket.advance_reader("q1", int(snap.seqs.max()))
        assert basket.read_new("q1").count == 0
        basket.insert_rows([(3, "c")])
        assert basket.read_new("q1").count == 1

    def test_gc_waits_for_all_readers(self, basket):
        """Shared strategy: tuple removed only after all readers saw it."""
        basket.register_reader("q1")
        basket.register_reader("q2")
        basket.insert_rows([(1, "a")])
        basket.advance_reader("q1", 0)
        assert basket.gc_shared() == 0, "q2 has not seen the tuple yet"
        assert basket.count == 1
        basket.advance_reader("q2", 0)
        assert basket.gc_shared() == 1
        assert basket.count == 0

    def test_unseen_count(self, basket):
        basket.register_reader("q1")
        basket.insert_rows([(1, "a"), (2, "b")])
        assert basket.unseen_count("q1") == 2
        basket.advance_reader("q1", 0)
        assert basket.unseen_count("q1") == 1

    def test_new_reader_sees_buffered(self, basket):
        basket.insert_rows([(1, "a")])
        basket.register_reader("late")
        assert basket.read_new("late").count == 1

    def test_unregister_triggers_gc(self, basket):
        basket.register_reader("q1")
        basket.register_reader("q2")
        basket.insert_rows([(1, "a")])
        basket.advance_reader("q1", 0)
        basket.unregister_reader("q2")
        assert basket.count == 0

    def test_gc_without_readers_is_noop(self, basket):
        basket.insert_rows([(1, "a")])
        assert basket.gc_shared() == 0


class TestLoadShedding:
    def test_capacity_drops_oldest(self, basket):
        basket.capacity = 3
        basket.insert_rows([(i, "x") for i in range(5)])
        assert basket.count == 3
        assert [r[0] for r in basket.rows()] == [2, 3, 4]
        assert basket.total_shed == 2

    def test_no_capacity_never_sheds(self, basket):
        basket.insert_rows([(i, "x") for i in range(100)])
        assert basket.total_shed == 0


class TestAppendResult:
    def test_append_result(self, basket, clock):
        clock.advance(2.0)
        rs = ResultSet(
            ["v", "s"],
            [
                bat_from_values(AtomType.INT, [7]),
                bat_from_values(AtomType.STR, ["z"]),
            ],
        )
        assert basket.append_result(rs) == 1
        assert basket.rows() == [(7, "z", 2.0)]

    def test_append_result_with_time(self, basket):
        rs = ResultSet(
            ["v", "s", TIME_COLUMN],
            [
                bat_from_values(AtomType.INT, [7]),
                bat_from_values(AtomType.STR, ["z"]),
                bat_from_values(AtomType.TIMESTAMP, [4.5]),
            ],
        )
        basket.append_result(rs)
        assert basket.rows()[0][2] == 4.5

    def test_append_result_arity_checked(self, basket):
        rs = ResultSet(["v"], [bat_from_values(AtomType.INT, [7])])
        with pytest.raises(BasketError):
            basket.append_result(rs)

    def test_empty_result_is_noop(self, basket):
        rs = ResultSet(
            ["v", "s"],
            [
                bat_from_values(AtomType.INT, []),
                bat_from_values(AtomType.STR, []),
            ],
        )
        assert basket.append_result(rs) == 0


class TestProperties:
    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=60),
        st.data(),
    )
    def test_partial_consume_keeps_complement(self, values, data):
        clock = LogicalClock()
        b = Basket("p", [("v", AtomType.INT)], clock)
        b.insert_rows([(v,) for v in values])
        to_remove = data.draw(
            st.lists(
                st.integers(0, len(values) - 1), unique=True, max_size=30
            )
        )
        b.consume_seqs(np.asarray(to_remove, dtype=np.int64))
        expected = [
            v for i, v in enumerate(values) if i not in set(to_remove)
        ]
        assert [r[0] for r in b.rows()] == expected

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=40))
    def test_conservation(self, values):
        """total_in == count + total_out at all times (no tuple loss)."""
        clock = LogicalClock()
        b = Basket("c", [("v", AtomType.INT)], clock)
        for v in values:
            b.insert_rows([(v,)])
            if v % 3 == 0:
                b.consume_all()
            assert b.total_in == b.count + b.total_out
