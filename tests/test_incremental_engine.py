"""Engine-level differential tests for ``execution="incremental"``.

Every incremental route must be indistinguishable from its re-eval twin
at the API surface: linear circuits emit identical rows, weighted
circuits (aggregate, join) integrate to the one-shot answer over the
same input, unsupported shapes fall back with a recorded reason, and
window aggregates on the delta plan match the re-eval plan row for row.
"""

from collections import Counter

import pytest

from repro import DataCell, WindowMode, WindowSpec
from repro.errors import DataCellError
from repro.incremental import WEIGHT_COLUMN
from repro.kernel.types import AtomType

ROWS = [(k % 4, v) for k, v in zip(range(24), range(-5, 19))]


def _feed_cell(execution):
    cell = DataCell(execution=execution)
    cell.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.INT)])
    return cell


def _drive(cell, rows=ROWS, basket="feed", batch=5):
    for i in range(0, len(rows), batch):
        cell.insert(basket, [list(r) for r in rows[i : i + batch]])
        cell.run_until_quiescent()


class TestLinearCircuits:
    def test_execution_mode_is_validated(self):
        with pytest.raises(DataCellError):
            DataCell(execution="speculative")

    def test_linear_matches_reeval_row_for_row(self):
        sql = (
            "select x.a, x.b from [select * from feed] as x "
            "where x.b > 2"
        )
        outputs = {}
        for execution in ("incremental", "reeval"):
            cell = _feed_cell(execution)
            handle = cell.submit_continuous(sql, name="q")
            _drive(cell)
            outputs[execution] = [tuple(r) for r in handle.fetch()]
            assert handle.execution == execution
            assert not handle.weighted
        assert outputs["incremental"] == outputs["reeval"]

    def test_fetch_integrated_requires_weighted_output(self):
        cell = _feed_cell("incremental")
        handle = cell.submit_continuous(
            "select x.a from [select * from feed] as x"
        )
        with pytest.raises(DataCellError):
            handle.fetch_integrated()


class TestWeightedCircuits:
    def test_aggregate_integrates_to_one_shot(self):
        cell = _feed_cell("incremental")
        handle = cell.submit_continuous(
            "select x.a, sum(x.b), count(x.b), min(x.b), max(x.b) "
            "from [select * from feed] as x group by x.a",
            name="agg",
        )
        assert handle.weighted
        assert handle.execution == "incremental"
        # the output basket carries the weight as its last column
        out_columns = [c.name for c in cell.basket("agg_out").user_columns]
        assert out_columns[-1] == WEIGHT_COLUMN
        assert cell.basket("agg_out").weighted
        _drive(cell)
        ref = DataCell()
        table = ref.create_table(
            "feed", [("a", AtomType.INT), ("b", AtomType.INT)]
        )
        table.append_rows([list(r) for r in ROWS])
        oneshot = ref.query(
            "select a, sum(b), count(b), min(b), max(b) "
            "from feed group by a"
        )
        assert Counter(handle.fetch_integrated()) == Counter(
            tuple(r) for r in oneshot
        )

    def test_join_integrates_to_one_shot(self):
        cell = DataCell(execution="incremental")
        cell.create_basket("lt", [("k", AtomType.INT), ("a", AtomType.INT)])
        cell.create_basket("rt", [("k", AtomType.INT), ("b", AtomType.INT)])
        handle = cell.submit_continuous(
            "select x.k, x.a, y.b from [select * from lt] as x, "
            "[select * from rt] as y where x.k = y.k",
            name="j",
        )
        assert handle.weighted
        left = [(i % 3, i) for i in range(14)]
        right = [(i % 5, 100 + i) for i in range(11)]
        # deliberately lopsided cadence: the left stream finishes long
        # before the right one, so the factory must fire on one-sided
        # deltas to cover the residue
        _drive(cell, rows=left, basket="lt", batch=7)
        _drive(cell, rows=right, basket="rt", batch=2)
        expected = Counter(
            (lk, la, rb) for lk, la in left for rk, rb in right if lk == rk
        )
        assert Counter(handle.fetch_integrated()) == expected

    def test_one_sided_tail_is_not_stranded(self):
        cell = DataCell(execution="incremental")
        cell.create_basket("lt", [("k", AtomType.INT), ("a", AtomType.INT)])
        cell.create_basket("rt", [("k", AtomType.INT), ("b", AtomType.INT)])
        handle = cell.submit_continuous(
            "select x.k, x.a, y.b from [select * from lt] as x, "
            "[select * from rt] as y where x.k = y.k"
        )
        cell.insert("lt", [[1, 10]])
        cell.run_until_quiescent()
        # only the right side has fresh tuples now; the pair must still
        # appear without any further left-side traffic
        cell.insert("rt", [[1, 20]])
        cell.run_until_quiescent()
        assert handle.fetch_integrated() == [(1, 10, 20)]


class TestFallback:
    def test_unsupported_shape_falls_back_with_reason(self):
        cell = _feed_cell("incremental")
        handle = cell.submit_continuous(
            "select distinct x.a from [select * from feed] as x",
            name="d",
        )
        assert handle.execution == "reeval"
        assert not handle.weighted
        assert any(
            name == "d" and "distinct" in reason.lower()
            for name, reason in cell.incremental_fallbacks
        )

    def test_fallback_query_still_runs(self):
        cell = _feed_cell("incremental")
        handle = cell.submit_continuous(
            "select distinct x.a from [select * from feed] as x"
        )
        _drive(cell)
        assert sorted(set(r[0] for r in handle.fetch())) == [0, 1, 2, 3]

    def test_per_query_override_beats_engine_default(self):
        cell = _feed_cell("reeval")
        handle = cell.submit_continuous(
            "select x.a from [select * from feed] as x",
            execution="incremental",
        )
        assert handle.execution == "incremental"
        assert not cell.incremental_fallbacks


class TestDeltaWindows:
    @pytest.mark.parametrize("size,slide", [(4, 4), (5, 2), (8, 3)])
    def test_count_window_matches_reeval(self, size, slide):
        values = [(i * 7) % 23 for i in range(40)]
        outputs = {}
        for execution in ("incremental", "reeval"):
            cell = DataCell()
            cell.create_basket("s", [("v", AtomType.LNG)])
            handle = cell.submit_window_aggregate(
                "s",
                "v",
                ["sum", "count", "min", "max"],
                WindowSpec(WindowMode.COUNT, size, slide),
                execution=execution,
                name="w",
            )
            for i in range(0, len(values), 3):
                cell.insert("s", [[v] for v in values[i : i + 3]])
                cell.run_until_quiescent()
            outputs[execution] = [tuple(r) for r in handle.fetch()]
        assert outputs["incremental"] == outputs["reeval"]

    def test_delta_window_handle_reports_incremental(self):
        cell = DataCell(execution="incremental")
        cell.create_basket("s", [("v", AtomType.LNG)])
        handle = cell.submit_window_aggregate(
            "s", "v", ["sum"], WindowSpec(WindowMode.COUNT, 4, 2)
        )
        assert handle.execution == "incremental"

    def test_explain_analyze_renders_circuit_state(self):
        cell = _feed_cell("incremental")
        handle = cell.submit_continuous(
            "select x.a, sum(x.b) from [select * from feed] as x "
            "group by x.a",
            name="agg",
        )
        _drive(cell)
        rendered = handle.explain_analyze()
        assert "circuit" in rendered.lower()
