"""The HTTP telemetry endpoint: routing, formats, and thread hygiene."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.clock import LogicalClock
from repro.core.engine import DataCell
from repro.obs.metrics import MetricsRegistry
from repro.obs.sysstreams import SystemStreamsConfig

CQ = (
    "select s.sensor, s.temp from "
    "[select * from sensors where sensors.temp > 30.0] as s"
)


def build_cell():
    clock = LogicalClock()
    cell = DataCell(
        clock=clock,
        metrics=MetricsRegistry(),
        system_streams=SystemStreamsConfig(interval=1.0),
    )
    cell.execute("create basket sensors (sensor int, temp double)")
    cell.submit_continuous(CQ, name="hot")
    cell.insert("sensors", [(1, 45.0), (2, 20.0)])
    cell.run_until_quiescent()
    clock.advance(1.0)
    cell.run_until_quiescent()
    return cell, clock


class TestRouting:
    """handle() is pure request→response: no sockets needed."""

    @pytest.fixture()
    def server(self):
        from repro.obs.httpd import TelemetryServer

        cell, _ = build_cell()
        # never start()ed: handle() works without a live socket
        server = TelemetryServer(cell)
        yield server
        server.close()

    def test_metrics(self, server):
        status, ctype, body = server.handle("/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4"
        assert "datacell_basket_inserted_total" in body

    def test_dashboard(self, server):
        status, _, body = server.handle("/dashboard")
        assert status == 200
        assert "scheduler:" in body
        assert "System streams" in body

    def test_stats_json(self, server):
        status, ctype, body = server.handle("/stats")
        assert status == 200
        assert ctype == "application/json"
        doc = json.loads(body)
        assert doc["queries"]["hot"]["delivered"] == 1
        assert doc["sys"]["samples"] == 1

    def test_healthz(self, server):
        assert server.handle("/healthz") == (200, "text/plain", "ok\n")

    def test_explain_known_query(self, server):
        status, _, body = server.handle("/explain/hot")
        assert status == 200
        assert "hot" in body

    def test_explain_unknown_query(self, server):
        status, _, body = server.handle("/explain/nope")
        assert status == 404

    def test_sys_tail(self, server):
        status, ctype, body = server.handle("/sys/metrics?limit=2")
        assert status == 200
        doc = json.loads(body)
        assert doc["basket"] == "sys.metrics"
        assert len(doc["rows"]) == 2
        assert doc["depth"] >= 2
        assert "metric" in doc["columns"]

    def test_sys_tail_full_name(self, server):
        status, _, body = server.handle("/sys/sys.baskets")
        assert status == 200
        assert json.loads(body)["basket"] == "sys.baskets"

    def test_sys_tail_unknown(self, server):
        status, _, _ = server.handle("/sys/nope")
        assert status == 404

    def test_sys_tail_bad_limit(self, server):
        status, _, _ = server.handle("/sys/metrics?limit=abc")
        assert status == 400

    def test_unknown_path(self, server):
        status, _, _ = server.handle("/wat")
        assert status == 404

    def test_engine_error_becomes_500(self, server):
        server.cell.stats = None  # break the engine surface
        status, _, body = server.handle("/stats")
        assert status == 500
        assert "TypeError" in body

    def test_sys_disabled_is_404(self):
        from repro.obs.httpd import TelemetryServer

        cell = DataCell(metrics=MetricsRegistry())
        server = TelemetryServer(cell)
        try:
            status, _, body = server.handle("/sys/metrics")
            assert status == 404
            assert "enabled" in body
        finally:
            server.close()


class TestLiveServer:
    def test_round_trip_over_a_socket(self):
        cell, _ = build_cell()
        server = cell.serve_http()
        assert server.running
        assert cell.serve_http() is server  # idempotent
        try:
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                assert b"datacell_" in resp.read()
            with urllib.request.urlopen(
                server.url + "/sys/queries?limit=1"
            ) as resp:
                doc = json.loads(resp.read())
                assert doc["rows"][0][0] == "hot"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/missing")
            assert err.value.code == 404
            assert server.requests_served >= 3
        finally:
            cell.stop()
        assert not server.running
        assert cell.httpd is None

    def test_stop_without_server_is_fine(self):
        cell, _ = build_cell()
        cell.stop()

    def test_close_is_idempotent(self):
        cell, _ = build_cell()
        server = cell.serve_http()
        server.close()
        server.close()
        assert not server.running


class TestRoutingResources:
    """?n= bounding on /sys/<basket> tails and the /top endpoint."""

    @pytest.fixture()
    def server(self):
        from repro.obs.httpd import TelemetryServer

        cell, _ = build_cell()
        server = TelemetryServer(cell)
        yield server
        server.close()

    def test_sys_tail_n_param(self, server):
        status, _, body = server.handle("/sys/metrics?n=2")
        assert status == 200
        assert len(json.loads(body)["rows"]) == 2

    def test_sys_tail_n_wins_over_limit(self, server):
        status, _, body = server.handle("/sys/metrics?n=1&limit=3")
        assert status == 200
        assert len(json.loads(body)["rows"]) == 1

    def test_sys_tail_bad_n(self, server):
        status, _, _ = server.handle("/sys/metrics?n=abc")
        assert status == 400

    def test_top(self, server):
        status, _, body = server.handle("/top")
        assert status == 200
        assert "Top queries by CPU" in body
        assert "hot" in body

    def test_top_bounded(self, server):
        status, _, body = server.handle("/top?n=0")
        assert status == 200
        assert "hot" not in body

    def test_top_bad_n(self, server):
        status, _, _ = server.handle("/top?n=abc")
        assert status == 400


class TestEmptyStates:
    """The surface stays well-formed before any queries exist or fire."""

    def _server(self, cell):
        from repro.obs.httpd import TelemetryServer

        return TelemetryServer(cell)

    def test_no_queries_registered(self):
        cell = DataCell(metrics=MetricsRegistry())
        server = self._server(cell)
        try:
            status, _, body = server.handle("/stats")
            assert status == 200
            doc = json.loads(body)
            assert doc["queries"] == {}
            assert doc["resources"]["engine"]["accounts"] == 0
            status, _, body = server.handle("/dashboard")
            assert status == 200
            assert "scheduler:" in body
            status, _, body = server.handle("/top")
            assert status == 200
            assert "Top queries by CPU" in body
        finally:
            server.close()

    def test_query_fired_zero_times(self):
        cell = DataCell(metrics=MetricsRegistry())
        cell.execute("create basket sensors (sensor int, temp double)")
        cell.submit_continuous(CQ, name="cold")
        server = self._server(cell)
        try:
            status, _, body = server.handle("/stats")
            assert status == 200
            doc = json.loads(body)
            assert doc["queries"]["cold"]["delivered"] == 0
            resources = doc["resources"]["queries"]["cold"]
            assert resources["firings"] == 0
            assert resources["cpu_seconds"] == 0
            status, _, body = server.handle("/dashboard")
            assert status == 200
            assert "cold" in body
            status, _, body = server.handle("/top")
            assert status == 200
            assert "cold" in body  # listed with all-zero usage
        finally:
            server.close()
