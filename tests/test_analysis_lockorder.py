"""Runtime lock-order recorder: cycle detection and engine wiring."""

import threading

import pytest

from repro.analysis.lockorder import (
    LockOrderError,
    LockOrderRecorder,
    ObservedLock,
    global_recorder,
    set_global_recorder,
)
from repro.core.engine import DataCell
from repro.kernel.types import AtomType


def _locks(recorder, *names):
    return [recorder.wrap(n, threading.RLock()) for n in names]


class TestCycleDetection:
    def test_ab_then_ba_is_a_cycle(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "a", "b")
        with a:
            with b:
                pass
        assert recorder.violations == []
        with b:
            with a:
                pass
        assert len(recorder.violations) == 1
        assert "cycle" in recorder.violations[0]

    def test_consistent_order_is_clean(self):
        recorder = LockOrderRecorder()
        a, b, c = _locks(recorder, "a", "b", "c")
        for _ in range(3):
            with a:
                with b:
                    with c:
                        pass
        with a:
            with c:
                pass
        assert recorder.violations == []
        assert recorder.edge_count() == 3  # a->b, b->c, a->c

    def test_three_lock_rotation_cycle(self):
        """a→b, b→c, then c→a closes a length-3 cycle."""
        recorder = LockOrderRecorder()
        a, b, c = _locks(recorder, "a", "b", "c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        assert recorder.violations == []
        with c:
            with a:
                pass
        assert len(recorder.violations) == 1

    def test_reentrant_acquire_is_not_a_cycle(self):
        recorder = LockOrderRecorder()
        (a,) = _locks(recorder, "a")
        with a:
            with a:  # RLock reentry must not create an a->a edge
                pass
        assert recorder.violations == []
        assert recorder.edge_count() == 0

    def test_strict_mode_raises_at_the_violation(self):
        recorder = LockOrderRecorder(strict=True)
        a, b = _locks(recorder, "a", "b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                a.acquire()
            # the refused acquisition was unwound: another thread can
            # take the real lock, nothing leaked
            result = {}

            def probe():
                result["ok"] = a.acquire(blocking=False)
                if result["ok"]:
                    a.release()

            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert result["ok"] is True

    def test_release_out_of_order_tolerated(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "a", "b")
        a.acquire()
        b.acquire()
        a.release()
        b.release()
        assert recorder.violations == []

    def test_summary_mentions_edges_and_violations(self):
        recorder = LockOrderRecorder()
        a, b = _locks(recorder, "a", "b")
        with a:
            with b:
                pass
        assert "1 acquisition edge(s)" in recorder.summary()
        assert "0 violation(s)" in recorder.summary()


class TestObservedLock:
    def test_proxies_context_manager(self):
        recorder = LockOrderRecorder()
        real = threading.RLock()
        lock = ObservedLock("x", real, recorder)
        with lock:
            # acquired for real: a second non-blocking acquire from
            # another thread must fail
            result = {}

            def probe():
                result["ok"] = real.acquire(blocking=False)

            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert result["ok"] is False

    def test_failed_acquire_not_recorded(self):
        recorder = LockOrderRecorder()
        real = threading.Lock()
        real.acquire()  # hold it elsewhere
        lock = ObservedLock("x", real, recorder)
        result = {}

        def probe():
            result["ok"] = lock.acquire(blocking=False)

        t = threading.Thread(target=probe)
        t.start()
        t.join()
        assert result["ok"] is False
        assert recorder.edge_count() == 0
        real.release()


class TestEngineWiring:
    def test_catalog_seam_wraps_basket_locks(self):
        recorder = LockOrderRecorder()
        cell = DataCell(lock_order=recorder)
        try:
            cell.create_basket("trades", [("price", AtomType.DBL)])
            cell.insert("trades", [(1.0,)])
            cell.run_until_quiescent()
        finally:
            cell.stop()
        # inserting + quiescing took basket locks through the proxy
        assert isinstance(
            cell.catalog.get("trades").lock, ObservedLock
        )
        assert recorder.violations == []

    def test_global_recorder_picked_up_and_restored(self):
        recorder = LockOrderRecorder()
        previous = set_global_recorder(recorder)
        try:
            cell = DataCell()
            assert cell.lock_order is recorder
            cell.stop()
        finally:
            set_global_recorder(previous)
        assert global_recorder() is previous

    def test_engine_runs_clean_under_strict_recorder(self):
        """A full submit/insert/fire cycle breaks no ordering rule."""
        recorder = LockOrderRecorder(strict=True)
        cell = DataCell(lock_order=recorder)
        try:
            cell.create_basket(
                "trades",
                [("price", AtomType.DBL), ("sym", AtomType.STR)],
            )
            q = cell.submit_continuous(
                "select x.sym from [select * from trades] as x "
                "where x.price > 1.0"
            )
            cell.insert("trades", [(0.5, "lo"), (2.0, "hi")])
            cell.run_until_quiescent()
            assert q.fetch() == [("hi",)]
        finally:
            cell.stop()
        assert recorder.violations == []
