"""Unit and property tests for BATs (the kernel's column structure)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlignmentError, KernelError, TypeMismatchError
from repro.kernel.bat import bat_from_values, check_aligned, empty_bat
from repro.kernel.types import AtomType


class TestConstruction:
    def test_empty(self):
        b = empty_bat(AtomType.INT)
        assert len(b) == 0
        assert b.hseqbase == 0

    def test_from_values(self):
        b = bat_from_values(AtomType.INT, [1, 2, 3])
        assert b.python_list() == [1, 2, 3]

    def test_from_values_with_nulls(self):
        b = bat_from_values(AtomType.DBL, [1.5, None, 2.5])
        assert b.python_list() == [1.5, None, 2.5]

    def test_hseqbase_preserved(self):
        b = bat_from_values(AtomType.INT, [1, 2], hseqbase=100)
        assert b.head_oids().tolist() == [100, 101]
        assert b.hseq_end == 102

    def test_str_bat(self):
        b = bat_from_values(AtomType.STR, ["x", None, "y"])
        assert b.python_list() == ["x", None, "y"]


class TestAppend:
    def test_append_grows(self):
        b = empty_bat(AtomType.INT)
        for i in range(1000):
            b.append(i)
        assert len(b) == 1000
        assert b.value(999) == 999

    def test_append_coerces(self):
        b = empty_bat(AtomType.DBL)
        b.append(3)
        assert b.python_list() == [3.0]

    def test_append_many(self):
        b = empty_bat(AtomType.INT)
        b.append_many(range(10))
        assert len(b) == 10

    def test_append_array(self):
        b = empty_bat(AtomType.LNG)
        b.append_array(np.arange(5, dtype=np.int64))
        assert b.python_list() == [0, 1, 2, 3, 4]

    def test_append_array_casts(self):
        b = empty_bat(AtomType.DBL)
        b.append_array(np.arange(3, dtype=np.int32))
        assert b.python_list() == [0.0, 1.0, 2.0]

    def test_append_bat_type_mismatch(self):
        b = empty_bat(AtomType.INT)
        other = bat_from_values(AtomType.STR, ["a"])
        with pytest.raises(TypeMismatchError):
            b.append_bat(other)

    def test_append_bat(self):
        b = bat_from_values(AtomType.INT, [1])
        b.append_bat(bat_from_values(AtomType.INT, [2, 3]))
        assert b.python_list() == [1, 2, 3]


class TestAccess:
    def test_value_out_of_range(self):
        b = bat_from_values(AtomType.INT, [1])
        with pytest.raises(KernelError):
            b.value(1)
        with pytest.raises(KernelError):
            b.value(-1)

    def test_value_at_oid(self):
        b = bat_from_values(AtomType.INT, [7, 8], hseqbase=10)
        assert b.value_at_oid(11) == 8

    def test_tail_is_view_of_valid_region(self):
        b = empty_bat(AtomType.INT)
        b.append(1)
        assert len(b.tail) == 1


class TestDerivation:
    def test_slice_preserves_oids(self):
        b = bat_from_values(AtomType.INT, [10, 20, 30, 40])
        s = b.slice(1, 3)
        assert s.python_list() == [20, 30]
        assert s.hseqbase == 1

    def test_slice_clamps(self):
        b = bat_from_values(AtomType.INT, [1, 2])
        assert b.slice(-5, 100).python_list() == [1, 2]

    def test_take_oids(self):
        b = bat_from_values(AtomType.INT, [10, 20, 30], hseqbase=5)
        t = b.take_oids(np.array([7, 5]))
        assert t.python_list() == [30, 10]
        assert t.hseqbase == 0

    def test_take_oids_out_of_range(self):
        b = bat_from_values(AtomType.INT, [1])
        with pytest.raises(KernelError):
            b.take_oids(np.array([5]))

    def test_copy_is_deep(self):
        b = bat_from_values(AtomType.INT, [1])
        c = b.copy()
        c.append(2)
        assert len(b) == 1 and len(c) == 2

    def test_nil_positions(self):
        b = bat_from_values(AtomType.INT, [1, None, 3])
        assert b.nil_positions().tolist() == [False, True, False]


class TestAlignment:
    def test_aligned_ok(self):
        a = bat_from_values(AtomType.INT, [1, 2])
        b = bat_from_values(AtomType.STR, ["x", "y"])
        check_aligned(a, b)

    def test_count_mismatch(self):
        a = bat_from_values(AtomType.INT, [1, 2])
        b = bat_from_values(AtomType.INT, [1])
        with pytest.raises(AlignmentError):
            check_aligned(a, b)

    def test_base_mismatch(self):
        a = bat_from_values(AtomType.INT, [1], hseqbase=0)
        b = bat_from_values(AtomType.INT, [1], hseqbase=5)
        with pytest.raises(AlignmentError):
            check_aligned(a, b)

    def test_empty_call_ok(self):
        check_aligned()


@st.composite
def int_lists(draw):
    return draw(
        st.lists(st.one_of(st.integers(-10**6, 10**6), st.none()), max_size=200)
    )


class TestProperties:
    @given(int_lists())
    def test_roundtrip(self, values):
        b = bat_from_values(AtomType.LNG, values)
        assert b.python_list() == values

    @given(int_lists(), st.integers(0, 50), st.integers(0, 50))
    def test_slice_matches_python(self, values, start, extent):
        b = bat_from_values(AtomType.LNG, values)
        stop = start + extent
        assert b.slice(start, stop).python_list() == values[start:stop]

    @given(int_lists(), int_lists())
    def test_append_bat_is_concatenation(self, left, right):
        a = bat_from_values(AtomType.LNG, left)
        a.append_bat(bat_from_values(AtomType.LNG, right))
        assert a.python_list() == left + right

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=100), st.data())
    def test_take_positions_matches_indexing(self, values, data):
        b = bat_from_values(AtomType.LNG, values)
        idx = data.draw(
            st.lists(st.integers(0, len(values) - 1), max_size=50)
        )
        taken = b.take_positions(np.asarray(idx, dtype=np.int64))
        assert taken.python_list() == [values[i] for i in idx]
