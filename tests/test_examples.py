"""Integration tests: every example script runs clean and prints what its
docstring promises.  Examples are the library's contract with new users —
they must never rot."""

import os
import subprocess
import sys


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ALERT sensor=2 temp=45.2" in out
        assert "still buffered: [(1, 21.5)]" in out

    def test_network_monitoring(self):
        out = run_example("network_monitoring.py")
        assert "intrusion alerts:" in out
        assert "blocklist hits:" in out
        assert "busiest destinations" in out
        # predicate window left innocuous traffic buffered
        assert "still buffered" in out

    def test_financial_ticker(self):
        out = run_example("financial_ticker.py")
        assert "incremental == re-evaluation results: True" in out
        assert "large-trade alerts:" in out

    def test_sensor_fusion(self):
        out = run_example("sensor_fusion.py")
        assert "sensors [7]" in out
        assert "correctly absent: True" in out

    def test_linear_road_demo(self):
        out = run_example("linear_road_demo.py")
        assert "oracle validation    : PASS" in out
        assert "5-second deadline    : MET" in out
        assert "with non-zero toll" in out
