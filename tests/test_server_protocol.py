"""Unit tests for the server wire protocol and the WebSocket codec."""

import struct

import pytest

from repro.durability.serde import pack_frame
from repro.errors import ProtocolError
from repro.kernel.types import AtomType
from repro.server.protocol import (
    Command,
    FrameDecoder,
    Message,
    arrays_from_rows,
    data_message,
    decode_payload,
    encode_message,
    error_message,
    insert_message,
    rows_from_arrays,
)
from repro.server.ws import (
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    WebSocketCodec,
    accept_key,
    handshake_response,
    parse_http_headers,
)

COLUMNS = [("price", AtomType.INT), ("qty", AtomType.DBL), ("sym", AtomType.STR)]
ROWS = [(120, 1.5, "X"), (90, 0.25, None), (7, -3.0, "multi\nline")]


class TestFraming:
    def test_insert_roundtrip(self):
        frame = encode_message(insert_message("trades", COLUMNS, ROWS, seq=5))
        (message,) = FrameDecoder().feed(frame)
        assert message.command is Command.INSERT
        assert message.meta == {"basket": "trades", "seq": 5}
        assert message.columns == COLUMNS
        assert message.rows() == ROWS
        assert message.row_count == 3

    def test_data_roundtrip_empty(self):
        frame = encode_message(data_message("q", COLUMNS, []))
        (message,) = FrameDecoder().feed(frame)
        assert message.rows() == []
        assert message.row_count == 0

    def test_control_roundtrip(self):
        frame = encode_message(error_message("boom", "it broke", seq=9))
        (message,) = FrameDecoder().feed(frame)
        assert message.command is Command.ERROR
        assert message.meta == {"code": "boom", "message": "it broke", "seq": 9}
        assert message.columns is None

    def test_byte_by_byte_feed(self):
        frame = encode_message(insert_message("t", COLUMNS, ROWS, seq=1))
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert len(out) == 1
        assert out[0].rows() == ROWS
        assert decoder.pending_bytes == 0

    def test_many_frames_one_feed(self):
        frames = b"".join(
            encode_message(error_message("e", str(i))) for i in range(5)
        )
        messages = FrameDecoder().feed(frames)
        assert [m.meta["message"] for m in messages] == [
            "0", "1", "2", "3", "4"
        ]

    def test_crc_corruption_poisons_the_stream(self):
        frame = bytearray(encode_message(error_message("e", "x")))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(frame))

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        header = struct.pack("<IQ", 0, 1 << 20)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(header)

    def test_unknown_opcode(self):
        payload = struct.pack("<BI", 99, 2) + b"{}"
        with pytest.raises(ProtocolError, match="opcode"):
            FrameDecoder().feed(pack_frame(payload))

    def test_bad_meta_json(self):
        payload = struct.pack("<BI", int(Command.PING), 3) + b"not"
        with pytest.raises(ProtocolError, match="metadata"):
            decode_payload(payload)

    def test_columns_meta_key_announces_blocks(self):
        """A control frame whose meta smuggles a ``columns`` key is read
        as tuple-bearing and fails — why ACKs carry ``schema`` instead."""
        meta = b'{"columns":[["v","int"]]}'
        payload = struct.pack("<BI", int(Command.ACK), len(meta)) + meta
        with pytest.raises(ProtocolError, match="truncated column block"):
            decode_payload(payload)

    def test_specs_arrays_mismatch_rejected(self):
        message = Message(Command.DATA, {"query": "q"}, COLUMNS, [])
        with pytest.raises(ProtocolError, match="3 column specs"):
            encode_message(message)


class TestRowConversion:
    def test_roundtrip(self):
        arrays = arrays_from_rows(COLUMNS, ROWS)
        assert rows_from_arrays(COLUMNS, arrays) == ROWS

    def test_arity_mismatch(self):
        with pytest.raises(ProtocolError, match="fields"):
            arrays_from_rows(COLUMNS, [(1, 2.0)])

    def test_bad_value_names_the_column(self):
        with pytest.raises(ProtocolError, match="'price'"):
            arrays_from_rows(COLUMNS, [("notanint", 1.0, "x")])


def _mask(opcode, payload, mask=b"\x01\x02\x03\x04"):
    return WebSocketCodec.mask_client_frame(opcode, payload, mask)


class TestWebSocket:
    def test_accept_key_rfc_vector(self):
        # the worked example from RFC 6455 §1.3
        assert (
            accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_handshake_response(self):
        raw = (
            b"GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\n"
            b"Connection: Upgrade\r\n"
            b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
        )
        line, headers = parse_http_headers(raw)
        assert line.startswith("GET")
        reply = handshake_response(headers)
        assert b"101 Switching Protocols" in reply
        assert b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in reply

    def test_handshake_requires_upgrade(self):
        with pytest.raises(ProtocolError):
            handshake_response({"sec-websocket-key": "x"})
        with pytest.raises(ProtocolError):
            handshake_response({"upgrade": "websocket"})

    def test_binary_roundtrip(self):
        codec = WebSocketCodec()
        messages, replies = codec.feed(_mask(OP_BINARY, b"hello frame"))
        assert messages == [b"hello frame"] and replies == []

    def test_fragmented_message_reassembled(self):
        codec = WebSocketCodec()
        first = bytearray(_mask(OP_BINARY, b"he"))
        first[0] &= 0x7F  # clear FIN
        messages, _ = codec.feed(bytes(first))
        assert messages == []
        messages, _ = codec.feed(_mask(OP_CONT, b"llo"))
        assert messages == [b"hello"]

    def test_ping_gets_ponged(self):
        codec = WebSocketCodec()
        messages, replies = codec.feed(_mask(OP_PING, b"probe"))
        assert messages == []
        assert len(replies) == 1 and replies[0][0] & 0x0F == 0xA

    def test_close_echoed_once(self):
        codec = WebSocketCodec()
        _, replies = codec.feed(_mask(OP_CLOSE, struct.pack(">H", 1000)))
        assert codec.closed and len(replies) == 1

    def test_text_frames_are_protocol_errors(self):
        with pytest.raises(ProtocolError, match="binary"):
            WebSocketCodec().feed(_mask(OP_TEXT, b"nope"))

    def test_unmasked_client_frame_rejected(self):
        unmasked = WebSocketCodec.encode_binary(b"x")
        with pytest.raises(ProtocolError, match="masked"):
            WebSocketCodec().feed(unmasked)

    def test_large_payload_length_encoding(self):
        payload = bytes(70_000)
        codec = WebSocketCodec()
        messages, _ = codec.feed(_mask(OP_BINARY, payload))
        assert messages == [payload]

    def test_frames_carry_protocol_frames(self):
        """The composition the server speaks: protocol frame in one
        binary WS message, reassembled then frame-decoded."""
        inner = encode_message(insert_message("t", COLUMNS, ROWS, seq=2))
        codec = WebSocketCodec()
        messages, _ = codec.feed(_mask(OP_BINARY, inner))
        (message,) = FrameDecoder().feed(messages[0])
        assert message.rows() == ROWS
