"""Shared fixtures: run-wide seeding and thread hermeticity.

Every test session seeds through :func:`repro.testing.seed_all` (the one
seeding path; override with ``DATACELL_SEED``) and echoes the seed in
the pytest header so a failing run can be replayed exactly.

The autouse fixture below makes threaded-mode tests hermetic: any
scheduler or TCP adapter thread still alive after a test is a cleanup
bug (a missing ``cell.stop()``/``close()``), and a leaked thread can
corrupt whichever test runs next — so it fails loudly here instead.
"""

import threading
import time

import pytest

from repro.testing import seed_all

# name prefixes owned by the engine: scheduler transition threads and
# the TCP adapter's accept/connection threads
ENGINE_THREAD_PREFIXES = ("datacell-", "tcp-ingress-", "tcp-egress-")


def pytest_report_header(config):
    return f"datacell seed: {seed_all()} (override with DATACELL_SEED)"


def _engine_threads():
    return [
        t.name
        for t in threading.enumerate()
        if t.is_alive() and t.name.startswith(ENGINE_THREAD_PREFIXES)
    ]


@pytest.fixture(autouse=True)
def no_leaked_engine_threads():
    """Fail any test that leaves engine threads running behind it."""
    before = set(_engine_threads())
    yield
    # brief grace: daemon threads observe their stop flag asynchronously
    deadline = time.monotonic() + 2.0
    leaked = [n for n in _engine_threads() if n not in before]
    while leaked and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked = [n for n in _engine_threads() if n not in before]
    if leaked:
        pytest.fail(
            "test leaked engine threads (missing stop()/close()?): "
            f"{sorted(leaked)}"
        )
