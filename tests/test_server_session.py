"""Session-layer unit tests: the backpressure dial and bindings.

Each of the three queue-full paths — ``block`` (wait, escalate on
timeout), ``drop-oldest`` (shed), ``disconnect`` (close) — is pinned
here without sockets; the TCP integration tests only have to prove the
transport wiring.
"""

import threading
import time

import pytest

from repro.errors import ServerError
from repro.kernel.types import AtomType
from repro.server.protocol import Command, FrameDecoder
from repro.server.session import (
    ClientSession,
    OutputQueue,
    ServerConfig,
    SubscriptionBinding,
)


def _decode(frames):
    decoder = FrameDecoder()
    out = []
    for frame in frames:
        out.extend(decoder.feed(frame))
    return out


class TestServerConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ServerError, match="backpressure"):
            ServerConfig(backpressure="yolo").validate()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ServerError, match="queue_frames"):
            ServerConfig(queue_frames=0).validate()


class TestOutputQueueBlock:
    def test_blocks_until_drained(self):
        q = OutputQueue("block", capacity=2, block_timeout=10.0)
        assert q.offer_data(b"a", 1) == "queued"
        assert q.offer_data(b"b", 1) == "queued"
        outcome = []
        producer = threading.Thread(
            target=lambda: outcome.append(q.offer_data(b"c", 1))
        )
        producer.start()
        time.sleep(0.05)
        assert not outcome  # still parked on the full queue
        assert q.drain() == [b"a", b"b"]
        producer.join(5.0)
        assert outcome == ["queued"]
        assert q.blocks == 1
        assert q.drain() == [b"c"]

    def test_block_timeout_escalates_to_disconnect(self):
        q = OutputQueue("block", capacity=1, block_timeout=0.05)
        assert q.offer_data(b"a", 1) == "queued"
        started = time.monotonic()
        assert q.offer_data(b"b", 1) == "disconnect"
        assert time.monotonic() - started >= 0.04
        assert q.dropped_frames == 0  # nothing shed, just refused

    def test_close_releases_blocked_producer(self):
        q = OutputQueue("block", capacity=1, block_timeout=10.0)
        q.offer_data(b"a", 1)
        outcome = []
        producer = threading.Thread(
            target=lambda: outcome.append(q.offer_data(b"b", 1))
        )
        producer.start()
        time.sleep(0.05)
        q.close()
        producer.join(5.0)
        assert outcome == ["closed"]


class TestOutputQueueDropOldest:
    def test_sheds_oldest_data_frame(self):
        q = OutputQueue("drop-oldest", capacity=2, block_timeout=1.0)
        q.offer_data(b"a", 3)
        q.offer_data(b"b", 4)
        assert q.offer_data(b"c", 5) == "dropped"
        assert q.drain() == [b"b", b"c"]
        assert q.dropped_frames == 1
        assert q.dropped_rows == 3

    def test_control_frames_survive_the_shed(self):
        q = OutputQueue("drop-oldest", capacity=1, block_timeout=1.0)
        q.offer_control(b"ctl")
        q.offer_data(b"a", 1)
        q.offer_data(b"b", 1)
        assert q.drain() == [b"ctl", b"b"]


class TestOutputQueueDisconnect:
    def test_full_queue_demands_disconnect(self):
        q = OutputQueue("disconnect", capacity=1, block_timeout=1.0)
        assert q.offer_data(b"a", 1) == "queued"
        assert q.offer_data(b"b", 1) == "disconnect"
        assert q.drain() == [b"a"]  # the overflowing frame was refused


class TestOutputQueueCommon:
    def test_control_bypasses_the_bound(self):
        q = OutputQueue("disconnect", capacity=1, block_timeout=1.0)
        q.offer_data(b"a", 1)
        for _ in range(5):
            assert q.offer_control(b"ctl") == "queued"
        assert q.depth == 6

    def test_closed_refuses_everything(self):
        q = OutputQueue("block", capacity=1, block_timeout=1.0)
        q.close()
        assert q.offer_data(b"a", 1) == "closed"
        assert q.offer_control(b"c") == "closed"

    def test_drain_limit(self):
        q = OutputQueue("block", capacity=10, block_timeout=1.0)
        for i in range(5):
            q.offer_data(bytes([i]), 1)
        assert len(q.drain(limit=2)) == 2
        assert q.depth == 3


class TestClientSession:
    def _session(self, policy, capacity=1):
        config = ServerConfig(
            backpressure=policy, queue_frames=capacity, block_timeout=0.05
        )
        woke, closed = [], []
        session = ClientSession(
            1,
            config,
            tenant="acme",
            wake=lambda: woke.append(1),
            request_close=closed.append,
        )
        return session, woke, closed

    def test_disconnect_path_sends_error_then_closes(self):
        from repro.server.protocol import data_message, encode_message

        frame = encode_message(
            data_message("q", [("v", AtomType.INT)], [(1,), (2,)])
        )
        session, _, closed = self._session("disconnect")
        assert session.deliver_data(frame, 2) == "queued"
        assert session.deliver_data(frame, 2) == "disconnect"
        assert closed == ["backpressure"]
        messages = _decode(session.queue.drain())
        errors = [m for m in messages if m.command is Command.ERROR]
        assert len(errors) == 1
        assert errors[0].meta["code"] == "backpressure"
        assert session.rows_out == 2  # the refused frame is not counted

    def test_stats_shape(self):
        session, _, _ = self._session("block", capacity=4)
        session.deliver_data(b"a", 3)
        stats = session.stats()
        assert stats["tenant"] == "acme"
        assert stats["rows_out"] == 3
        assert stats["queue_depth"] == 1
        assert stats["dropped_frames"] == 0


class _FakeEmitter:
    def __init__(self):
        self.dropped = 0

    def note_dropped(self, count):
        self.dropped += count


class TestSubscriptionBinding:
    COLUMNS = [("v", AtomType.INT)]

    def test_delivers_encoded_data_frames(self):
        session = ClientSession(1, ServerConfig())
        binding = SubscriptionBinding(session, "q1", self.COLUMNS)
        binding([(1,), (2,)])
        (message,) = _decode(session.queue.drain())
        assert message.command is Command.DATA
        assert message.meta["query"] == "q1"
        assert message.rows() == [(1,), (2,)]
        assert binding.deliveries == 1
        assert binding.rows_delivered == 2

    def test_empty_delivery_is_a_noop(self):
        session = ClientSession(1, ServerConfig())
        binding = SubscriptionBinding(session, "q1", self.COLUMNS)
        binding([])
        assert session.queue.depth == 0

    def test_drop_accounting_reaches_emitter_and_callback(self):
        config = ServerConfig(backpressure="drop-oldest", queue_frames=1)
        session = ClientSession(1, config)
        emitter = _FakeEmitter()
        drops = []
        binding = SubscriptionBinding(
            session,
            "q1",
            self.COLUMNS,
            emitter=emitter,
            on_drop=lambda q, rows, outcome: drops.append((q, rows, outcome)),
        )
        binding([(1,)])
        binding([(2,), (3,)])  # sheds the first frame
        assert drops == [("q1", 2, "dropped")]
        assert emitter.dropped == 2
        assert session.dropped_frames == 1

    def test_closed_session_swallows_deliveries(self):
        session = ClientSession(1, ServerConfig())
        binding = SubscriptionBinding(session, "q1", self.COLUMNS)
        session.close()
        binding([(1,)])  # must not raise into the emitter
        assert binding.deliveries == 0
