"""End-to-end tests of the network front door over real sockets.

Each test boots one threaded engine plus its server on an ephemeral
port, drives it with the synchronous :class:`DataCellClient` (or a raw
socket for the WebSocket and protocol-violation cases), and shuts the
whole stack down — the conftest thread-leak fixture verifies nothing
(including ``datacell-server-loop``) survives.
"""

import socket
import struct
import threading
import time

import pytest

from repro import DataCell, LogicalClock
from repro.durability import DurabilityConfig
from repro.errors import ServerError
from repro.kernel.types import AtomType
from repro.server.client import DataCellClient
from repro.server.protocol import (
    Command,
    FrameDecoder,
    Message,
    encode_message,
)
from repro.server.session import ServerConfig
from repro.server.ws import OP_BINARY, WebSocketCodec

TRADE_COLUMNS = [("price", AtomType.INT), ("sym", AtomType.STR)]
BIG_SQL = (
    "select t.price, t.sym from "
    "[select * from trades where trades.price > 100] as t"
)


def _boot(config=None, **cell_kwargs):
    cell = DataCell(clock=LogicalClock(), **cell_kwargs)
    cell.execute("create basket trades (price int, sym str)")
    cell.start()
    server = cell.serve(config=config)
    return cell, server


def test_full_lifecycle_over_tcp():
    cell, server = _boot()
    try:
        host, port = server.address
        with DataCellClient(host, port, tenant="acme") as db:
            assert db.server_meta["backpressure"] == "block"
            assert db.server_meta["tenant"] == "acme"
            qname = db.subscribe(BIG_SQL, name="big")
            assert qname == "big"
            assert db.columns["big"] == TRADE_COLUMNS
            ack = db.insert(
                "trades", TRADE_COLUMNS, [(120, "X"), (90, "Y"), (101, "Z")]
            )
            assert ack["rows"] == 3
            rows = db.poll("big", timeout=10.0, min_rows=2)
            assert sorted(rows) == [(101, "Z"), (120, "X")]
            assert db.ping() < 10.0
            db.unsubscribe("big")

            stats = cell.stats()["server"]
            assert stats["sessions_open"] == 1
            assert stats["ingest"]["applied_rows"] == 3
            assert stats["dropped_frames"] == 0
    finally:
        assert cell.stop() == []
    # session-owned query is torn down with the session
    assert cell.continuous_queries() == []


def test_create_basket_over_the_wire():
    cell, server = _boot()
    try:
        with DataCellClient(*server.address) as db:
            db.create("create basket quotes (bid int)")
            db.insert("quotes", [("bid", AtomType.INT)], [(5,)])
            deadline = time.monotonic() + 10
            while cell.basket("quotes").total_in < 1:
                if time.monotonic() > deadline:
                    pytest.fail("ingest never reached the basket")
                time.sleep(0.01)
            with pytest.raises(ServerError, match="create"):
                db.create("select * from quotes")  # DML may not cross
    finally:
        cell.stop()


def test_two_sessions_fan_out_one_query():
    cell, server = _boot()
    query = cell.submit_continuous(BIG_SQL, name="big")
    # the handle's own fetch() collector counts as one subscriber
    baseline = query.emitter.subscriber_count
    try:
        host, port = server.address
        with DataCellClient(host, port) as a, DataCellClient(host, port) as b:
            assert a.subscribe(query="big") == "big"
            assert b.subscribe(query="big") == "big"
            a.insert("trades", TRADE_COLUMNS, [(150, "A")])
            assert a.poll("big", timeout=10.0) == [(150, "A")]
            assert b.poll("big", timeout=10.0) == [(150, "A")]
    finally:
        cell.stop()
    # attached (not owned) subscriptions leave the query standing
    assert [q.name for q in cell.continuous_queries()] == ["big"]
    assert query.emitter.subscriber_count == baseline


def test_unknown_basket_and_unknown_query_errors():
    cell, server = _boot()
    try:
        with DataCellClient(*server.address) as db:
            with pytest.raises(ServerError, match="unknown-basket"):
                db.insert("ghost", TRADE_COLUMNS, [(1, "x")])
            with pytest.raises(ServerError, match="subscribe"):
                db.subscribe(query="ghost")
            with pytest.raises(ServerError, match="unknown-subscription"):
                db.unsubscribe("ghost")
            assert db.ping() < 10.0  # command errors don't kill the session
    finally:
        cell.stop()


def test_hello_gate_and_version_check():
    cell, server = _boot()
    try:
        host, port = server.address
        # a frame before HELLO is refused and the session is closed
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(encode_message(Message(Command.PING, {})))
            decoder = FrameDecoder()
            messages = decoder.feed(sock.recv(65536))
            assert messages[0].command is Command.ERROR
            assert messages[0].meta["code"] == "hello-required"
            assert sock.recv(65536) == b""  # server closed
        # a wrong protocol version is refused at HELLO
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                encode_message(Message(Command.HELLO, {"version": 99}))
            )
            messages = FrameDecoder().feed(sock.recv(65536))
            assert messages[0].meta["code"] == "version"
    finally:
        cell.stop()


def test_tenant_session_cap_refuses_hello():
    cell, server = _boot(config=ServerConfig(max_sessions_per_tenant=1))
    try:
        host, port = server.address
        with DataCellClient(host, port, tenant="acme"):
            with pytest.raises(ServerError, match="session cap"):
                DataCellClient(host, port, tenant="acme").connect()
            # other tenants are unaffected
            with DataCellClient(host, port, tenant="beta") as db:
                assert db.ping() < 10.0
    finally:
        cell.stop()


def test_budget_breach_throttles_tenant_ingest():
    cell, server = _boot(config=ServerConfig(admission_cooldown=0.4))
    try:
        host, port = server.address
        with DataCellClient(host, port, tenant="acme", timeout=30.0) as db:
            db.insert("trades", TRADE_COLUMNS, [(1, "a")])
            started = time.monotonic()
            server.throttle_tenant("acme", 0.5)
            # the reader is already parked in read(): the first frame
            # slips through, the *next* read boundary observes the
            # throttle and pauses
            db.insert("trades", TRADE_COLUMNS, [(2, "b")])
            db.insert("trades", TRADE_COLUMNS, [(3, "c")])
            assert time.monotonic() - started >= 0.3  # reader was paused
            assert server.tenants_throttled == 1
    finally:
        cell.stop()


def test_shutdown_order_is_server_scheduler_durability_httpd(tmp_path):
    cell = DataCell(
        clock=LogicalClock(),
        durability=DurabilityConfig(directory=tmp_path),
    )
    cell.execute("create basket trades (price int, sym str)")
    cell.start()
    cell.serve()
    cell.serve_http()
    assert cell.stop() == []
    stages = [
        e.detail["stage"]
        for e in cell.trace.events()
        if e.kind == "shutdown"
    ]
    assert stages == ["server", "scheduler", "durability", "httpd"]
    assert cell.server is None


def test_crash_recovery_with_server_attached(tmp_path):
    """Rows ingested over the wire recover exactly like receptor rows."""
    cell = DataCell(
        clock=LogicalClock(),
        durability=DurabilityConfig(directory=tmp_path, fsync="always"),
    )
    cell.execute("create basket trades (price int, sym str)")
    query = cell.submit_continuous(BIG_SQL, name="big")
    delivered = []
    query.subscribe(delivered.extend)
    cell.start()
    server = cell.serve()
    with DataCellClient(*server.address) as db:
        db.insert("trades", TRADE_COLUMNS, [(120, "X"), (90, "Y")])
        deadline = time.monotonic() + 10
        while len(delivered) < 1:
            if time.monotonic() > deadline:
                pytest.fail("no delivery before the crash")
            time.sleep(0.01)
    cell.stop()

    recovered = DataCell(
        clock=LogicalClock(),
        durability=DurabilityConfig(directory=tmp_path, fsync="always"),
    )
    recovered.execute("create basket trades (price int, sym str)")
    requery = recovered.submit_continuous(BIG_SQL, name="big")
    redelivered = []
    requery.subscribe(redelivered.extend)
    recovered.recover()
    recovered.run_until_quiescent()
    # replay reconstructs the pre-crash state: the filtered row was
    # already delivered (exactly-once), the basket history matches
    assert redelivered == []
    assert recovered.basket("trades").total_in == 2
    assert recovered.stats()["durability"]["recovered"] is True


def test_websocket_upgrade_speaks_the_same_frames():
    cell, server = _boot()
    try:
        host, port = server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                b"GET / HTTP/1.1\r\n"
                b"Host: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"
                b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n\r\n"
            )
            head = b""
            while b"\r\n\r\n" not in head:
                head += sock.recv(65536)
            head, _, tail = head.partition(b"\r\n\r\n")
            assert b"101 Switching Protocols" in head

            def send(message):
                frame = encode_message(message)
                sock.sendall(
                    WebSocketCodec.mask_client_frame(
                        OP_BINARY, frame, b"\x0a\x0b\x0c\x0d"
                    )
                )

            buffer = bytearray(tail)
            decoder = FrameDecoder()

            def read_message():
                while True:
                    if len(buffer) >= 2:
                        length = buffer[1] & 0x7F
                        offset = 2
                        if length == 126:
                            (length,) = struct.unpack_from(">H", buffer, 2)
                            offset = 4
                        if len(buffer) >= offset + length:
                            payload = bytes(buffer[offset : offset + length])
                            del buffer[: offset + length]
                            messages = decoder.feed(payload)
                            if messages:
                                return messages[0]
                            continue
                    buffer.extend(sock.recv(65536))

            send(Message(Command.HELLO, {"version": 1, "tenant": "ws"}))
            hello = read_message()
            assert hello.command is Command.HELLO_OK
            assert hello.meta["tenant"] == "ws"
            send(Message(Command.PING, {"seq": 1}))
            pong = read_message()
            assert pong.command is Command.PONG
            assert pong.meta["seq"] == 1
    finally:
        cell.stop()


def test_concurrent_subscribe_unsubscribe_under_fire():
    cell, server = _boot()
    query = cell.submit_continuous(
        "select t.price, t.sym from [select * from trades] as t",
        name="all",
    )
    baseline = query.emitter.subscriber_count
    host, port = server.address
    stop = threading.Event()
    errors = []

    def inserter():
        try:
            with DataCellClient(host, port, client="inserter") as db:
                i = 0
                while not stop.is_set():
                    db.insert("trades", TRADE_COLUMNS, [(i, "x")])
                    i += 1
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(f"inserter: {exc}")

    def toggler(n):
        try:
            with DataCellClient(host, port, client=f"toggler-{n}") as db:
                for _ in range(25):
                    db.subscribe(query="all")
                    db.poll("all", timeout=0.05)
                    db.unsubscribe("all")
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(f"toggler-{n}: {exc}")

    threads = [threading.Thread(target=toggler, args=(n,)) for n in range(3)]
    feeder = threading.Thread(target=inserter)
    feeder.start()
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
    finally:
        stop.set()
        feeder.join(10.0)
    try:
        assert errors == []
        deadline = time.monotonic() + 5
        while (
            query.emitter.subscriber_count > baseline
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)  # disconnecting sessions detach asynchronously
        assert query.emitter.subscriber_count == baseline
    finally:
        cell.stop()


def test_max_sessions_refuses_connection():
    cell, server = _boot(config=ServerConfig(max_sessions=1))
    try:
        host, port = server.address
        with DataCellClient(host, port):
            with pytest.raises(ServerError, match="max_sessions"):
                DataCellClient(host, port).connect()
    finally:
        cell.stop()


def test_server_drains_queues_on_stop():
    """close() flushes queued DATA to sockets before tearing down."""
    cell, server = _boot()
    try:
        host, port = server.address
        db = DataCellClient(host, port)
        db.connect()
        db.subscribe(BIG_SQL, name="big")
        db.insert("trades", TRADE_COLUMNS, [(500, "F")])
        rows = db.poll("big", timeout=10.0)
        assert rows == [(500, "F")]
    finally:
        cell.stop()
    # after stop the client sees BYE, then EOF
    events = [m.command for m in db.drain_events()]
    try:
        db.poll("big", timeout=0.2)
    except ServerError:
        pass
    events += [m.command for m in db.drain_events()]
    assert Command.BYE in events
    db.close(send_bye=False)
