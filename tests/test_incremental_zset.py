"""Property tests for the Z-set algebra and the incremental operators.

Hypothesis hammers the algebraic laws the incremental execution mode
rests on: Z-sets form an abelian group under merge with eager zero
elimination, differentiation inverts integration (``D(I(s)) == s``),
lifted operators are linear, and the stateful operators (group
aggregate with retraction, equi-join against integrated state) agree
with brute-force recomputation over the integrated input — including
MIN/MAX under adversarial insert/retract sequences, where a retraction
of the current extremum forces the state to resurrect the runner-up.
"""

from collections import Counter

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.incremental import (
    Delay,
    Differentiate,
    IncrementalGroupAggregate,
    IncrementalJoin,
    Integrate,
    Lift,
    ZSet,
    integrate_weighted_rows,
)
from repro.testing import current_seed

# rows are small tuples of small ints: collisions (and hence weight
# accumulation / cancellation) must actually happen
row_st = st.tuples(st.integers(0, 3), st.integers(-2, 2))
weight_st = st.integers(-3, 3).filter(lambda w: w != 0)
zset_st = st.lists(st.tuples(row_st, weight_st), max_size=12).map(
    lambda pairs: _zset(pairs)
)


def _zset(pairs):
    out = ZSet()
    for row, weight in pairs:
        out.add(row, weight)
    return out


# ----------------------------------------------------------------------
# group algebra
# ----------------------------------------------------------------------
@seed(current_seed())
@settings(max_examples=120, deadline=None)
@given(zset_st)
def test_additive_inverse_cancels(a):
    assert not (a + (-a))
    assert not (a - a)


@seed(current_seed())
@settings(max_examples=120, deadline=None)
@given(zset_st, zset_st)
def test_merge_commutes(a, b):
    assert a + b == b + a


@seed(current_seed())
@settings(max_examples=120, deadline=None)
@given(zset_st, zset_st, zset_st)
def test_merge_associates(a, b, c):
    assert (a + b) + c == a + (b + c)


@seed(current_seed())
@settings(max_examples=120, deadline=None)
@given(zset_st, zset_st)
def test_zero_weights_are_always_eliminated(a, b):
    merged = a + b
    assert all(w != 0 for _, w in merged.items())


@seed(current_seed())
@settings(max_examples=100, deadline=None)
@given(st.lists(row_st, max_size=10))
def test_from_rows_to_rows_round_trips_multisets(rows):
    z = ZSet.from_rows(rows)
    assert Counter(z.to_rows()) == Counter(rows)
    assert z.total_weight() == len(rows)
    assert z.is_positive()


@seed(current_seed())
@settings(max_examples=100, deadline=None)
@given(zset_st)
def test_weighted_rows_round_trip(z):
    again = ZSet()
    for *row, weight in z.to_weighted_rows():
        again.add(tuple(row), weight)
    assert again == z


def test_to_rows_refuses_retractions():
    z = ZSet({(1, 2): -1})
    with pytest.raises(Exception):
        z.to_rows()


def test_integrate_weighted_rows_cancels():
    rows = [(1, 5, 1), (1, 5, 1), (1, 5, -1), (2, 7, 1)]
    assert Counter(integrate_weighted_rows(rows)) == Counter(
        [(1, 5), (2, 7)]
    )


# ----------------------------------------------------------------------
# stream operators: D(I(s)) == s, delay, lift linearity
# ----------------------------------------------------------------------
@seed(current_seed())
@settings(max_examples=80, deadline=None)
@given(st.lists(zset_st, max_size=8))
def test_differentiate_inverts_integrate(stream):
    integrate, differentiate = Integrate(), Differentiate()
    for delta in stream:
        assert differentiate.step(integrate.step(delta)) == delta


@seed(current_seed())
@settings(max_examples=80, deadline=None)
@given(st.lists(zset_st, max_size=8))
def test_delay_shifts_by_one_step(stream):
    delay = Delay()
    previous = ZSet()
    for delta in stream:
        assert delay.step(delta) == previous
        previous = delta


@seed(current_seed())
@settings(max_examples=80, deadline=None)
@given(zset_st, zset_st)
def test_lift_is_linear(a, b):
    fn = lambda row: (row[0] + row[1],)  # noqa: E731
    assert Lift(fn).step(a + b) == Lift(fn).step(a) + Lift(fn).step(b)


# ----------------------------------------------------------------------
# incremental group aggregate vs brute force, with retraction
# ----------------------------------------------------------------------
# an op sequence: True = insert a fresh (key, value); False = retract
# one previously inserted element (chosen by index into the live set)
agg_ops_st = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 2),  # key
        st.integers(-5, 5),  # value
        st.integers(0, 10 ** 6),  # retract choice
    ),
    min_size=1,
    max_size=30,
)


def _expected_agg_rows(live, aggregates):
    """Brute-force ``(key, *aggs)`` rows over the live multiset."""
    by_key = {}
    for key, value in live:
        by_key.setdefault(key, []).append(value)
    rows = []
    for key, values in by_key.items():
        out = [key]
        for name in aggregates:
            if name == "sum":
                out.append(float(sum(values)))
            elif name in ("count", "count_star"):
                out.append(len(values))
            elif name == "avg":
                out.append(float(sum(values)) / len(values))
            elif name == "min":
                out.append(float(min(values)))
            elif name == "max":
                out.append(float(max(values)))
        rows.append(tuple(out))
    return Counter(rows)


def _drive_aggregate(ops, aggregates, batch=3):
    op = IncrementalGroupAggregate(list(aggregates), grouped=True)
    integrated = ZSet()
    live = []  # multiset of (key, value) currently inserted
    pending = ZSet()
    staged = 0
    for insert, key, value, choice in ops:
        if insert:
            live.append((key, value))
            pending.add((key, value), +1)
        elif live:
            key, value = live.pop(choice % len(live))
            pending.add((key, value), -1)
        else:
            continue
        staged += 1
        if staged >= batch:
            integrated.merge(op.step(pending))
            pending, staged = ZSet(), 0
    if pending or staged:
        integrated.merge(op.step(pending))
    return integrated, live


@seed(current_seed())
@settings(max_examples=100, deadline=None)
@given(agg_ops_st, st.integers(1, 4))
def test_group_aggregate_integrates_to_brute_force(ops, batch):
    aggregates = ("sum", "count", "avg")
    integrated, live = _drive_aggregate(ops, aggregates, batch=batch)
    assert integrated.is_positive()
    assert (
        Counter(integrated.to_rows())
        == _expected_agg_rows(live, aggregates)
    )


@seed(current_seed())
@settings(max_examples=100, deadline=None)
@given(agg_ops_st, st.integers(1, 4))
def test_minmax_survive_adversarial_retraction(ops, batch):
    """Retracting the current extremum must resurrect the runner-up."""
    aggregates = ("min", "max", "count")
    integrated, live = _drive_aggregate(ops, aggregates, batch=batch)
    assert (
        Counter(integrated.to_rows())
        == _expected_agg_rows(live, aggregates)
    )


def test_minmax_retraction_explicit():
    op = IncrementalGroupAggregate(["max"], grouped=False)
    out = ZSet()
    out.merge(op.step(ZSet.from_rows([((), 5), ((), 9), ((), 3)])))
    assert out.to_rows() == [(9.0,)]
    out.merge(op.step(ZSet({((), 9): -1})))  # retract the max
    assert out.to_rows() == [(5.0,)]
    out.merge(op.step(ZSet({((), 5): -1, ((), 3): -1})))
    assert not out  # group emptied: only the retraction remains


# ----------------------------------------------------------------------
# incremental join vs brute force
# ----------------------------------------------------------------------
join_row_st = st.tuples(st.integers(0, 3), st.integers(0, 5))
join_stream_st = st.lists(
    st.tuples(
        st.lists(join_row_st, max_size=4),  # left batch
        st.lists(join_row_st, max_size=4),  # right batch
    ),
    max_size=8,
)


@seed(current_seed())
@settings(max_examples=100, deadline=None)
@given(join_stream_st)
def test_join_integrates_to_brute_force(stream):
    op = IncrementalJoin(0, 0)
    integrated = ZSet()
    left_all, right_all = [], []
    for left_batch, right_batch in stream:
        left_all.extend(left_batch)
        right_all.extend(right_batch)
        integrated.merge(
            op.step_both(
                ZSet.from_rows(left_batch), ZSet.from_rows(right_batch)
            )
        )
    expected = Counter(
        (lk, lv, rv)
        for lk, lv in left_all
        for rk, rv in right_all
        if lk == rk
    )
    assert integrated.is_positive()
    assert Counter(integrated.to_rows()) == expected


@seed(current_seed())
@settings(max_examples=60, deadline=None)
@given(join_stream_st)
def test_join_delta_order_is_irrelevant(stream):
    """All-left-then-all-right == interleaved batches (same integral)."""
    interleaved = IncrementalJoin(0, 0)
    a = ZSet()
    for left_batch, right_batch in stream:
        a.merge(
            interleaved.step_both(
                ZSet.from_rows(left_batch), ZSet.from_rows(right_batch)
            )
        )
    sequential = IncrementalJoin(0, 0)
    b = ZSet()
    for left_batch, _ in stream:
        b.merge(sequential.step_both(ZSet.from_rows(left_batch), ZSet()))
    for _, right_batch in stream:
        b.merge(sequential.step_both(ZSet(), ZSet.from_rows(right_batch)))
    assert a == b


def test_join_retraction_cancels_pairs():
    op = IncrementalJoin(0, 0)
    out = ZSet()
    out.merge(op.step_both(ZSet.from_rows([(1, "a")]), ZSet()))
    out.merge(op.step_both(ZSet(), ZSet.from_rows([(1, "b")])))
    assert out.to_rows() == [(1, "a", "b")]
    out.merge(op.step_both(ZSet({(1, "a"): -1}), ZSet()))
    assert not out


# ----------------------------------------------------------------------
# operator state round-trips (durability contract)
# ----------------------------------------------------------------------
@seed(current_seed())
@settings(max_examples=40, deadline=None)
@given(agg_ops_st)
def test_aggregate_state_round_trip_preserves_behaviour(ops):
    aggregates = ("sum", "min", "max", "count")
    original = IncrementalGroupAggregate(list(aggregates), grouped=True)
    for insert, key, value, _ in ops:
        weight = 1 if insert else -1
        if weight < 0:
            continue  # keep the state a valid multiset
        original.step(ZSet({(key, value): weight}))
    clone = IncrementalGroupAggregate(list(aggregates), grouped=True)
    clone.import_state(original.export_state())
    probe = ZSet.from_rows([(0, 99), (1, -99)])
    assert original.step(probe.copy()) == clone.step(probe.copy())


def test_join_state_round_trip_preserves_behaviour():
    original = IncrementalJoin(0, 0)
    original.step_both(
        ZSet.from_rows([(1, "a"), (2, "b")]), ZSet.from_rows([(1, "x")])
    )
    clone = IncrementalJoin(0, 0)
    clone.import_state(original.export_state())
    probe_r = ZSet.from_rows([(2, "y"), (1, "z")])
    assert original.step_both(ZSet(), probe_r.copy()) == clone.step_both(
        ZSet(), probe_r.copy()
    )
