"""The firing-order contract: priority desc, then registration order.

``run_until_quiescent``'s fairness under equal priorities used to be an
accident of python's sort stability; it is now an explicit, documented
tie-break in :class:`~repro.core.scheduler.PriorityPolicy` — shared by
the synchronous scheduler, the Petri-net engine and the simulator, so
all three agree on the firing sequence.  These tests pin the contract.
"""

from dataclasses import dataclass, field
from typing import List

from repro.core.factory import ActivationResult
from repro.core.scheduler import FiringPolicy, PriorityPolicy, Scheduler
from repro.obs.metrics import MetricsRegistry
from repro.simtest import SimScheduler


@dataclass
class Stub:
    """A transition that records its firings and disables itself."""

    name: str
    priority: int
    log: List[str]
    shots: int = 1
    fired: int = field(default=0)

    def enabled(self):
        return self.fired < self.shots

    def activate(self):
        self.fired += 1
        self.log.append(self.name)
        return ActivationResult(fired=True, tuples_in=1, tuples_out=1)


def quiet():
    return MetricsRegistry(enabled=False)


class TestPriorityPolicyContract:
    def test_priority_descending(self):
        log: List[str] = []
        sched = Scheduler(metrics=quiet())
        sched.register(Stub("low", -5, log))
        sched.register(Stub("high", 5, log))
        sched.register(Stub("mid", 0, log))
        sched.run_until_quiescent()
        assert log == ["high", "mid", "low"]

    def test_equal_priorities_fire_in_registration_order(self):
        log: List[str] = []
        sched = Scheduler(metrics=quiet())
        for name in ("first", "second", "third"):
            sched.register(Stub(name, 7, log))
        sched.run_until_quiescent()
        assert log == ["first", "second", "third"]

    def test_every_sweep_visits_all_equal_transitions(self):
        # fairness: nobody starves — each step fires every enabled
        # transition once, in the same documented order
        log: List[str] = []
        sched = Scheduler(metrics=quiet())
        sched.register(Stub("a", 1, log, shots=2))
        sched.register(Stub("b", 1, log, shots=2))
        sched.run_until_quiescent()
        assert log == ["a", "b", "a", "b"]

    def test_sweep_order_is_pure_and_explicit(self):
        log: List[str] = []
        transitions = [Stub("x", 1, log), Stub("y", 2, log), Stub("z", 1, log)]
        ordered = PriorityPolicy().sweep_order(transitions)
        assert [t.name for t in ordered] == ["y", "x", "z"]
        # input order untouched (policies must not mutate their argument)
        assert [t.name for t in transitions] == ["x", "y", "z"]


class TestSimulatorAgreesWithSynchronous:
    def build(self, scheduler):
        log: List[str] = []
        scheduler.register(Stub("r", 10, log))
        scheduler.register(Stub("f1", 0, log))
        scheduler.register(Stub("f2", 0, log))
        scheduler.register(Stub("e", -10, log))
        return log

    def test_same_firing_sequence_under_default_policy(self):
        # single-shot transitions isolate the tie-break itself: within
        # one sweep the two driving modes must produce the identical
        # sequence.  (With re-enabling transitions the modes legitimately
        # differ in shape — sweep-per-step vs one-firing-at-a-time — but
        # both orders still derive from the same documented policy.)
        sync_log = self.build(sync := Scheduler(metrics=quiet()))
        sync.run_until_quiescent()
        sim = SimScheduler(seed=0, policy="priority", metrics=quiet())
        sim_log = self.build(sim)
        sim.run_episode([])
        assert sim_log == sync_log
        assert [n for n, _, _ in sim.result.firings] == sync_log

    def test_custom_policy_honoured_by_synchronous_step(self):
        # the FiringPolicy seam: the synchronous scheduler takes any
        # policy, not just the default — here, reverse registration order
        class Reverse(FiringPolicy):
            def sweep_order(self, transitions):
                return list(reversed(transitions))

        sched = Scheduler(metrics=quiet(), policy=Reverse())
        log: List[str] = []
        for name in ("one", "two", "three"):
            sched.register(Stub(name, 0, log))
        sched.step()
        assert log == ["three", "two", "one"]
