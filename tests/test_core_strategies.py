"""Tests for the §2.5 processing strategies and §3.2 splitting/sharing.

The three strategies must be *semantically equivalent* (same result rows
per query) while differing in the work they do — the property the
benchmarks then quantify.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.scheduler import Scheduler
from repro.core.splitting import (
    SplitterPlan,
    build_shared_subplan_pipeline,
    build_split_pipeline,
)
from repro.core.strategies import (
    RangeQuery,
    build_chained_pipeline,
    build_separate_pipeline,
    build_shared_pipeline,
)
from repro.errors import DataCellError
from repro.kernel.types import AtomType


def run_strategy(builder, queries, values):
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    net = builder(stream, queries, clock)
    scheduler = Scheduler()
    for t in net.all_transitions():
        scheduler.register(t)
    stream.insert_rows([(v,) for v in values])
    scheduler.run_until_quiescent()
    return {
        name: sorted(r[0] for r in basket.rows())
        for name, basket in net.output_baskets.items()
    }, net


DISJOINT = [
    RangeQuery("q1", "v", 0, 9),
    RangeQuery("q2", "v", 10, 19),
    RangeQuery("q3", "v", 20, 29),
]
VALUES = [5, 12, 25, 7, 31, 15, 22, 3, 18, 29, 40, 0]


class TestEquivalence:
    def test_all_strategies_agree(self):
        results = {}
        for name, builder in (
            ("separate", build_separate_pipeline),
            ("shared", build_shared_pipeline),
            ("chained", build_chained_pipeline),
        ):
            results[name], _ = run_strategy(builder, DISJOINT, VALUES)
        assert results["separate"] == results["shared"] == results["chained"]
        assert results["separate"]["q1"] == [0, 3, 5, 7]
        assert results["separate"]["q2"] == [12, 15, 18]
        assert results["separate"]["q3"] == [22, 25, 29]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-5, 35), max_size=60))
    def test_equivalence_property(self, values):
        expected = None
        for builder in (
            build_separate_pipeline,
            build_shared_pipeline,
            build_chained_pipeline,
        ):
            got, _ = run_strategy(builder, DISJOINT, values)
            if expected is None:
                expected = got
            else:
                assert got == expected


class TestSeparate:
    def test_replication_cost_visible(self):
        _, net = run_strategy(build_separate_pipeline, DISJOINT, VALUES)
        replicator = net.extra_transitions[0]
        assert replicator.tuples_copied == len(VALUES) * len(DISJOINT)

    def test_each_query_scans_full_stream(self):
        _, net = run_strategy(build_separate_pipeline, DISJOINT, VALUES)
        for factory in net.factories:
            assert factory.plan.tuples_scanned == len(VALUES)


class TestShared:
    def test_no_replication(self):
        _, net = run_strategy(build_shared_pipeline, DISJOINT, VALUES)
        assert net.extra_transitions == []

    def test_stream_basket_drained_after_all_readers(self):
        _, net = run_strategy(build_shared_pipeline, DISJOINT, VALUES)
        assert net.stream_basket.count == 0

    def test_readers_registered(self):
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        build_shared_pipeline(stream, DISJOINT, clock)
        assert sorted(stream.readers()) == ["q1", "q2", "q3"]


class TestChained:
    def test_later_queries_scan_less(self):
        """The §2.5 claim: q2 processes fewer tuples than q1 under chaining."""
        _, net = run_strategy(build_chained_pipeline, DISJOINT, VALUES)
        scans = [f.plan.tuples_scanned for f in net.factories]
        assert scans[0] == len(VALUES)
        assert scans[1] == scans[0] - 4  # q1 removed its 4 matches
        assert scans[2] == scans[1] - 3

    def test_overlapping_ranges_rejected(self):
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        overlapping = [
            RangeQuery("q1", "v", 0, 10),
            RangeQuery("q2", "v", 5, 15),
        ]
        with pytest.raises(DataCellError):
            build_chained_pipeline(stream, overlapping, clock)

    def test_nulls_flow_down_the_chain(self):
        got, net = run_strategy(
            build_chained_pipeline, DISJOINT, [5, None, 15]
        )
        assert got["q1"] == [5]
        assert got["q2"] == [15]
        # NULL reached the last link and was dropped there (no leftover)
        assert net.factories[-1].plan.tuples_scanned >= 1


class TestSplitting:
    def test_splitter_copies_and_releases(self):
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        q1 = RangeQuery("fast", "v", 0, 9)
        q2 = RangeQuery("slow", "v", 10, 19)
        net = build_split_pipeline(stream, [(q1, None), (q2, None)], clock)
        scheduler = Scheduler()
        for t in net.all_transitions():
            scheduler.register(t)
        stream.insert_rows([(v,) for v in VALUES])
        scheduler.run_until_quiescent()
        assert stream.count == 0
        assert sorted(r[0] for r in net.output_baskets["fast"].rows()) == [
            0, 3, 5, 7,
        ]
        splitter = net.factories[0]
        assert splitter.plan.tuples_copied == len(VALUES) * 2

    def test_splitter_needs_staging(self):
        with pytest.raises(DataCellError):
            SplitterPlan("x", [])

    def test_fast_query_not_blocked_by_slow(self):
        """After the splitter runs, the fast factory is enabled even if the
        slow one has not consumed its staging basket."""
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        q1 = RangeQuery("fast", "v", 0, 9)
        q2 = RangeQuery("slow", "v", 10, 19)
        net = build_split_pipeline(stream, [(q1, None), (q2, None)], clock)
        splitter, fast, slow = net.factories
        stream.insert_rows([(1,), (11,)])
        splitter.activate()
        assert stream.count == 0, "shared input released immediately"
        assert fast.enabled() and slow.enabled()
        fast.activate()  # fast proceeds without waiting for slow
        assert net.output_baskets["fast"].count == 1


class TestSharedSubplan:
    def test_cover_factory_runs_once_per_batch(self):
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        queries = [
            RangeQuery("q1", "v", 10, 19),
            RangeQuery("q2", "v", 15, 25),
        ]
        net = build_shared_subplan_pipeline(stream, queries, clock)
        scheduler = Scheduler()
        for t in net.all_transitions():
            scheduler.register(t)
        stream.insert_rows([(v,) for v in VALUES])
        scheduler.run_until_quiescent()
        cover = net.factories[0]
        # the cover factory scanned the full stream once...
        assert cover.plan.tuples_scanned == len(VALUES)
        # ...and the refinements scanned only the covered range
        covered = [v for v in VALUES if 10 <= v <= 25]
        for refine in net.factories[1:]:
            assert refine.plan.tuples_scanned == len(covered)
        assert sorted(
            r[0] for r in net.output_baskets["q1"].rows()
        ) == [12, 15, 18]
        assert sorted(
            r[0] for r in net.output_baskets["q2"].rows()
        ) == [15, 18, 22, 25]

    def test_requires_bounded_ranges(self):
        clock = LogicalClock()
        stream = Basket("s", [("v", AtomType.INT)], clock)
        with pytest.raises(DataCellError):
            build_shared_subplan_pipeline(
                stream, [RangeQuery("q", "v", None, 5)], clock
            )
