"""Unit tests for receptors, emitters, channels, and the scheduler."""

import threading
import time

import pytest

from repro.adapters.channels import (
    InMemoryChannel,
    format_tuple,
    parse_tuple_text,
)
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.emitter import CollectingClient, Emitter
from repro.core.factory import CallablePlan, Factory
from repro.core.receptor import Receptor
from repro.core.scheduler import Scheduler
from repro.errors import AdapterError, SchedulerError
from repro.kernel.join import projection
from repro.kernel.mal import ResultSet
from repro.kernel.select import range_select
from repro.kernel.types import AtomType


@pytest.fixture
def clock():
    return LogicalClock()


class TestWireFormat:
    def test_roundtrip(self):
        row = ("hello, world", 42, None, "back\\slash", "multi\nline")
        text = format_tuple(row)
        fields = parse_tuple_text(text)
        assert fields == ["hello, world", "42", "", "back\\slash", "multi\nline"]

    def test_simple(self):
        assert format_tuple((1, "a")) == "1,a"
        assert parse_tuple_text("1,a") == ["1", "a"]

    def test_null_is_empty_field(self):
        assert format_tuple((None,)) == ""
        assert parse_tuple_text(",") == ["", ""]


class TestChannel:
    def test_fifo(self):
        ch = InMemoryChannel()
        ch.push("a")
        ch.push("b")
        assert ch.poll() == ["a", "b"]
        assert ch.pending() == 0

    def test_poll_limit(self):
        ch = InMemoryChannel()
        ch.push_many(["a", "b", "c"])
        assert ch.poll(2) == ["a", "b"]
        assert ch.pending() == 1

    def test_capacity_drops_oldest(self):
        ch = InMemoryChannel(capacity=2)
        ch.push_many(["a", "b", "c"])
        assert ch.poll() == ["b", "c"]
        assert ch.total_dropped == 1

    def test_closed_rejects_push(self):
        ch = InMemoryChannel()
        ch.close()
        with pytest.raises(AdapterError):
            ch.push("a")


class TestReceptor:
    def test_textual_events(self, clock):
        basket = Basket("s", [("v", AtomType.INT), ("t", AtomType.DBL)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [basket])
        ch.push("1,2.5")
        ch.push("3,4.5")
        assert r.enabled()
        r.activate()
        assert basket.rows() == [(1, 2.5, 0.0), (3, 4.5, 0.0)]
        assert not r.enabled()

    def test_structured_events(self, clock):
        basket = Basket("s", [("v", AtomType.INT)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [basket])
        ch.push((7,))
        r.activate()
        assert basket.rows() == [(7, 0.0)]

    def test_invalid_events_skipped(self, clock):
        """Malformed input must not stop the stream."""
        basket = Basket("s", [("v", AtomType.INT)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [basket])
        ch.push_many(["notanint", "1,2", "5"])
        r.activate()
        assert basket.rows() == [(5, 0.0)]
        assert r.total_invalid == 2

    def test_null_fields(self, clock):
        basket = Basket("s", [("v", AtomType.INT)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [basket])
        ch.push("")
        r.activate()
        assert basket.rows() == [(None, 0.0)]

    def test_multiple_targets_replicate(self, clock):
        """Separate-baskets replication at the receptor."""
        b1 = Basket("b1", [("v", AtomType.INT)], clock)
        b2 = Basket("b2", [("v", AtomType.INT)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [b1, b2])
        ch.push("1")
        r.activate()
        assert b1.count == 1 and b2.count == 1

    def test_schema_mismatch_rejected(self, clock):
        b1 = Basket("b1", [("v", AtomType.INT)], clock)
        b2 = Basket("b2", [("v", AtomType.DBL)], clock)
        with pytest.raises(AdapterError):
            Receptor("r", InMemoryChannel(), [b1, b2])

    def test_batch_size_respected(self, clock):
        basket = Basket("s", [("v", AtomType.INT)], clock)
        ch = InMemoryChannel()
        r = Receptor("r", ch, [basket], batch_size=2)
        ch.push_many(["1", "2", "3"])
        r.activate()
        assert basket.count == 2
        assert ch.pending() == 1

    def test_needs_targets(self):
        with pytest.raises(AdapterError):
            Receptor("r", InMemoryChannel(), [])


class TestEmitter:
    def test_delivers_and_empties(self, clock):
        basket = Basket("out", [("v", AtomType.INT)], clock)
        client = CollectingClient()
        e = Emitter("e", basket)
        e.subscribe(client)
        basket.insert_rows([(1,), (2,)])
        assert e.enabled()
        e.activate()
        assert client.rows == [(1,), (2,)]
        assert basket.count == 0
        assert not e.enabled()

    def test_time_column_stripped_by_default(self, clock):
        clock.advance(3.0)
        basket = Basket("out", [("v", AtomType.INT)], clock)
        client = CollectingClient()
        e = Emitter("e", basket)
        e.subscribe(client)
        basket.insert_rows([(1,)])
        e.activate()
        assert client.rows == [(1,)]

    def test_include_time(self, clock):
        clock.advance(3.0)
        basket = Basket("out", [("v", AtomType.INT)], clock)
        client = CollectingClient()
        e = Emitter("e", basket, include_time=True)
        e.subscribe(client)
        basket.insert_rows([(1,)])
        e.activate()
        assert client.rows == [(1, 3.0)]

    def test_channel_subscription_textual(self, clock):
        basket = Basket("out", [("v", AtomType.INT), ("s", AtomType.STR)], clock)
        sink = InMemoryChannel()
        e = Emitter("e", basket)
        e.subscribe_channel(sink)
        basket.insert_rows([(1, "x")])
        e.activate()
        assert sink.poll() == ["1,x"]

    def test_multiple_subscribers(self, clock):
        basket = Basket("out", [("v", AtomType.INT)], clock)
        c1, c2 = CollectingClient(), CollectingClient()
        e = Emitter("e", basket)
        e.subscribe(c1)
        e.subscribe(c2)
        basket.insert_rows([(1,)])
        e.activate()
        assert c1.rows == c2.rows == [(1,)]

    def test_unsubscribe_stops_delivery(self, clock):
        """Regression: a detached client receives no later firings."""
        basket = Basket("out", [("v", AtomType.INT)], clock)
        kept, gone = CollectingClient(), CollectingClient()
        e = Emitter("e", basket)
        e.subscribe(kept)
        e.subscribe(gone)
        basket.insert_rows([(1,)])
        e.activate()
        assert e.unsubscribe(gone) is True
        assert e.unsubscribe(gone) is False  # second detach is a no-op
        assert e.subscriber_count == 1
        basket.insert_rows([(2,)])
        e.activate()
        assert kept.rows == [(1,), (2,)]
        assert gone.rows == [(1,)]

    def test_unsubscribe_channel(self, clock):
        basket = Basket("out", [("v", AtomType.INT)], clock)
        sink = InMemoryChannel()
        e = Emitter("e", basket)
        e.subscribe_channel(sink)
        basket.insert_rows([(1,)])
        e.activate()
        assert e.unsubscribe_channel(sink) is True
        assert e.unsubscribe_channel(sink) is False
        basket.insert_rows([(2,)])
        e.activate()
        assert sink.poll() == ["1"]

    def test_closed_channel_detaches_itself(self, clock):
        basket = Basket("out", [("v", AtomType.INT)], clock)
        sink = InMemoryChannel()
        e = Emitter("e", basket)
        e.subscribe_channel(sink)
        sink.close()
        basket.insert_rows([(1,)])
        e.activate()
        assert e.subscriber_count == 0
        assert e.channels_detached == 1

    def test_note_dropped_accounting(self, clock):
        basket = Basket("out", [("v", AtomType.INT)], clock)
        e = Emitter("e", basket)
        e.note_dropped(3)
        e.note_dropped(2)
        assert e.deliveries_dropped == 5


def _pipeline(clock):
    """Figure 1: receptor -> B1 -> factory -> B2 -> emitter."""
    b1 = Basket("b1", [("v", AtomType.INT)], clock)
    b2 = Basket("b2", [("v", AtomType.INT)], clock)
    ch = InMemoryChannel()

    def plan(snaps):
        snap = snaps["b1"]
        col = snap.column("v")
        cands = range_select(col, 10, 20)
        return ResultSet(["v"], [projection(cands, col)])

    receptor = Receptor("r", ch, [b1])
    factory = Factory("q", CallablePlan(plan, default_output="b2"), [b1], [b2])
    client = CollectingClient()
    emitter = Emitter("e", b2)
    emitter.subscribe(client)
    return ch, receptor, factory, emitter, client


class TestScheduler:
    def test_figure1_pipeline_sync(self, clock):
        ch, receptor, factory, emitter, client = _pipeline(clock)
        s = Scheduler()
        for t in (receptor, factory, emitter):
            s.register(t)
        ch.push_many(["5", "15", "25", "12"])
        fired = s.run_until_quiescent()
        assert fired >= 3
        assert client.rows == [(15,), (12,)]

    def test_duplicate_registration(self, clock):
        _, receptor, _, _, _ = _pipeline(clock)
        s = Scheduler()
        s.register(receptor)
        with pytest.raises(SchedulerError):
            s.register(receptor)

    def test_unregister(self, clock):
        ch, receptor, factory, emitter, client = _pipeline(clock)
        s = Scheduler()
        for t in (receptor, factory, emitter):
            s.register(t)
        s.unregister("q")
        ch.push("15")
        s.run_until_quiescent()
        assert client.rows == []

    def test_get_unknown(self):
        with pytest.raises(SchedulerError):
            Scheduler().get("ghost")

    def test_priority_order_receptor_first(self, clock):
        """Receptors (prio 10) fire before factories before emitters."""
        ch, receptor, factory, emitter, client = _pipeline(clock)
        s = Scheduler()
        for t in (emitter, factory, receptor):  # register in reverse
            s.register(t)
        ch.push("15")
        fired_in_one_step = s.step()
        # priority order (receptor > factory > emitter) plus per-firing
        # enablement re-checks move the tuple through the whole chain in
        # a single scheduler iteration
        assert fired_in_one_step == 3
        assert client.rows == [(15,)]

    def test_step_rejected_while_threaded(self, clock):
        s = Scheduler()
        s.start()
        try:
            with pytest.raises(SchedulerError):
                s.step()
        finally:
            s.stop()

    def test_threaded_mode_end_to_end(self, clock):
        ch, receptor, factory, emitter, client = _pipeline(clock)
        s = Scheduler(poll_interval=0.0005)
        for t in (receptor, factory, emitter):
            s.register(t)
        s.start()
        try:
            for v in ("5", "15", "25", "12", "18"):
                ch.push(v)
            deadline = time.time() + 5
            while len(client.rows) < 3 and time.time() < deadline:
                time.sleep(0.005)
        finally:
            s.stop()
        assert sorted(client.rows) == [(12,), (15,), (18,)]

    def test_stop_joins_threads(self, clock):
        s = Scheduler()
        s.start()
        s.stop()
        assert not s.running
        before = threading.active_count()
        # restart is allowed after a stop
        s.start()
        s.stop()
        assert threading.active_count() <= before + 1
