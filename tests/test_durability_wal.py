"""The segmented write-ahead log: append, read, rotate, truncate, fsync.

The contract under test: a crashed writer's log always decodes to an
exact prefix of what was appended (torn tails detected, never invented
records), a restarted writer never appends into a pre-crash segment,
and the fsync policy dial only changes *when* fsync happens — every
append is flushed to the OS regardless.
"""

import numpy as np
import pytest

from repro.durability.wal import (
    CheckpointRecord,
    DurabilityConfig,
    EmitRecord,
    FsyncPolicy,
    InsertRecord,
    SEGMENT_MAGIC,
    WalWriter,
    list_segments,
    read_wal,
)
from repro.errors import DurabilityError
from repro.kernel.types import AtomType

COLS = [("a", AtomType.INT), ("b", AtomType.DBL)]


def _arrays(values):
    return [
        np.array([v for v, _ in values], dtype=np.int32),
        np.array([v for _, v in values], dtype=np.float64),
    ]


def test_append_and_read_back_all_record_kinds(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.append_insert("feed", 1.5, COLS, _arrays([(1, 0.5), (2, 1.5)]))
    writer.append_emit("q_emitter", 7)
    writer.append_checkpoint_marker(3)
    writer.close()

    records, torn = read_wal(tmp_path)
    assert torn is False
    insert, emit, marker = records
    assert isinstance(insert, InsertRecord)
    assert insert.basket == "feed"
    assert insert.stamp == 1.5
    assert insert.count == 2
    assert [tuple(c) for c in insert.columns] == COLS
    assert list(insert.arrays[0]) == [1, 2]
    assert emit == EmitRecord("q_emitter", 7)
    assert marker == CheckpointRecord(3)


def test_restarted_writer_never_reuses_a_segment(tmp_path):
    first = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    first.append_emit("e", 1)
    first.abandon()  # crash
    second = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    assert second.current_segment == first.current_segment + 1
    second.append_emit("e", 2)
    second.close()
    records, torn = read_wal(tmp_path)
    assert [r.high_water for r in records] == [1, 2]
    assert torn is False


def test_torn_tail_is_truncated_and_reported(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.append_emit("e", 1)
    writer.append_emit("e", 2)
    writer.close()
    (seq, path), = list_segments(tmp_path)
    path.write_bytes(path.read_bytes()[:-3])  # crash mid-write
    records, torn = read_wal(tmp_path)
    assert [r.high_water for r in records] == [1]
    assert torn is True


def test_crc_corruption_ends_the_whole_read(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    for i in range(3):
        writer.append_emit("e", i)
    writer.rotate()
    writer.append_emit("e", 99)  # lives in a *later* segment
    writer.close()
    (_, first_path), _ = list_segments(tmp_path)[:2]
    data = bytearray(first_path.read_bytes())
    data[-1] ^= 0xFF  # corrupt the last record of the first segment
    first_path.write_bytes(bytes(data))
    records, torn = read_wal(tmp_path)
    # the read stops at the corruption; the later segment's record must
    # NOT appear (it cannot be an acknowledged suffix of a broken log)
    assert [r.high_water for r in records] == [0, 1]
    assert torn is True


def test_rotate_defines_an_exact_suffix(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.append_emit("e", 1)
    cut = writer.rotate()
    writer.append_emit("e", 2)
    writer.close()
    suffix, torn = read_wal(tmp_path, start_segment=cut)
    assert [r.high_water for r in suffix] == [2]
    assert torn is False


def test_truncate_before_removes_only_sealed_prefix(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.append_emit("e", 1)
    cut = writer.rotate()
    writer.append_emit("e", 2)
    removed = writer.truncate_before(cut)
    writer.close()
    assert removed == 1
    assert [seq for seq, _ in list_segments(tmp_path)] == [cut]
    records, _ = read_wal(tmp_path)
    assert [r.high_water for r in records] == [2]


def test_size_based_rotation(tmp_path):
    writer = WalWriter(
        tmp_path, fsync=FsyncPolicy.OFF, segment_max_bytes=1024
    )
    start = writer.current_segment
    for i in range(100):
        writer.append_emit("some_emitter_name", i)
    writer.close()
    assert writer.current_segment > start
    records, torn = read_wal(tmp_path)
    assert [r.high_water for r in records] == list(range(100))
    assert torn is False


def test_fsync_policies(tmp_path):
    always = WalWriter(tmp_path / "a", fsync=FsyncPolicy.ALWAYS)
    for i in range(5):
        always.append_emit("e", i)
    always.close()
    assert always.fsyncs == 5

    off = WalWriter(tmp_path / "b", fsync=FsyncPolicy.OFF)
    for i in range(5):
        off.append_emit("e", i)
    off.close()
    assert off.fsyncs == 0

    # a huge interval means only the sync() call fsyncs
    interval = WalWriter(
        tmp_path / "c", fsync=FsyncPolicy.INTERVAL, fsync_interval=3600.0
    )
    for i in range(5):
        interval.append_emit("e", i)
    assert interval.fsyncs == 0
    interval.sync()
    assert interval.fsyncs == 1
    interval.close()


def test_segment_files_carry_magic(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.append_emit("e", 0)
    writer.close()
    (_, path), = list_segments(tmp_path)
    assert path.read_bytes().startswith(SEGMENT_MAGIC)


def test_closed_writer_rejects_appends(tmp_path):
    writer = WalWriter(tmp_path, fsync=FsyncPolicy.OFF)
    writer.close()
    with pytest.raises(DurabilityError):
        writer.append_emit("e", 0)


def test_config_normalizes_and_validates():
    config = DurabilityConfig(directory="/tmp/x", fsync="always")
    assert config.fsync is FsyncPolicy.ALWAYS
    with pytest.raises(DurabilityError):
        DurabilityConfig(directory="/tmp/x", fsync="sometimes")
    with pytest.raises(DurabilityError):
        DurabilityConfig(directory="/tmp/x", segment_max_bytes=10)
    with pytest.raises(DurabilityError):
        DurabilityConfig(directory="/tmp/x", keep_checkpoints=0)
