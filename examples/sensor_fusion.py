#!/usr/bin/env python3
"""Sensor networks — fusing two streams with a sliding-window join.

Two sensor arrays report independently: temperature and smoke density.
A fire signature is a sensor whose *both* streams spike within a 10-second
window — a textbook sliding-window equi-join (§3.1's window processing
applied to a blocking operator), preceded by per-stream predicate-window
filtering in SQL.

Topology::

    temp_raw  --[q: temp > 40]-->  temp_hot   \
                                                window join --> fused alerts
    smoke_raw --[q: ppm > 300]-->  smoke_hot  /

Run:  python examples/sensor_fusion.py
"""

import random

from repro import DataCell, LogicalClock
from repro.core.factory import ConsumeMode, InputBinding
from repro.core.windows import SlidingWindowJoinPlan
from repro.kernel.types import AtomType


def main() -> None:
    clock = LogicalClock()
    cell = DataCell(clock=clock)
    cell.execute("create basket temp_raw (sensor bigint, temp double)")
    cell.execute("create basket smoke_raw (sensor bigint, ppm double)")

    # stage 1: predicate windows keep only the anomalous readings
    hot = cell.submit_continuous(
        "select t.sensor, t.temp from "
        "[select * from temp_raw where temp_raw.temp > 40.0] as t",
        name="hot",
    )
    smoky = cell.submit_continuous(
        "select s.sensor, s.ppm from "
        "[select * from smoke_raw where smoke_raw.ppm > 300.0] as s",
        name="smoky",
    )

    # stage 2: fuse the two alert streams on sensor id within 10 seconds
    join_plan = SlidingWindowJoinPlan(
        left_basket="hot_out",
        right_basket="smoky_out",
        left_key="sensor",
        right_key="sensor",
        window_seconds=10.0,
        output_basket="fire_out",
    )
    fire = cell.submit_plan(
        "fire",
        join_plan,
        [
            InputBinding(hot.output_basket, ConsumeMode.ALL, optional=True),
            InputBinding(smoky.output_basket, ConsumeMode.ALL, optional=True),
        ],
        [
            ("key", AtomType.LNG),
            ("left_time", AtomType.TIMESTAMP),
            ("right_time", AtomType.TIMESTAMP),
        ],
    )
    # the join consumes the upstream outputs itself; detach the default
    # emitters that submit_continuous wired onto them
    cell.scheduler.unregister("hot_emitter")
    cell.scheduler.unregister("smoky_emitter")

    # simulate: sensor 7 catches fire at t=30; others just drift
    rng = random.Random(4)
    for second in range(0, 60, 2):
        clock.set(float(second))
        temp_rows, smoke_rows = [], []
        for sensor in range(10):
            burning = sensor == 7 and second >= 30
            temp = 60.0 + rng.uniform(-5, 5) if burning else 20 + rng.uniform(-3, 3)
            ppm = 500.0 + rng.uniform(-50, 50) if burning else 50 + rng.uniform(-20, 20)
            # sensor 3 runs hot but never smokes: no fused alert for it
            if sensor == 3:
                temp = 45.0 + rng.uniform(-2, 2)
            temp_rows.append((sensor, temp))
            smoke_rows.append((sensor, ppm))
        cell.insert("temp_raw", temp_rows)
        cell.insert("smoke_raw", smoke_rows)
        cell.run_until_quiescent()

    alerts = fire.fetch()
    sensors = sorted({int(key) for key, _, _ in alerts})
    print(f"fused fire alerts: {len(alerts)} pair(s), sensors {sensors}")
    for key, lt, rt in alerts[:5]:
        print(f"  sensor {int(key)}: temp spike @{lt:.0f}s, smoke @{rt:.0f}s")
    print("sensor 3 (hot but smokeless) correctly absent:", 3 not in sensors)
    print(
        f"join work: {join_plan.probes} probes, "
        f"{join_plan.pairs_emitted} pairs"
    )


if __name__ == "__main__":
    main()
