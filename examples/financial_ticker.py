#!/usr/bin/env python3
"""Financial services — standing queries over a stock-tick stream.

Demonstrates:

* per-symbol sliding-window statistics (avg/min/max price) using the
  incremental basic-window route;
* a large-trade alert joining ticks against a static reference table to
  enrich alerts with the sector (continuous stream-table join in SQL);
* both evaluation routes (§3.1) side by side on identical input, with
  their work counters, to show the incremental route's advantage live.

Run:  python examples/financial_ticker.py
"""

from repro import DataCell, LogicalClock, WindowMode, WindowSpec
from repro.adapters.generators import stock_ticks

TICK_SCHEMA = "(sym varchar(10), price double, qty int)"


def main() -> None:
    cell = DataCell(clock=LogicalClock())
    for basket in ("ticks_stats", "ticks_alerts", "ticks_reeval"):
        cell.execute(f"create basket {basket} {TICK_SCHEMA}")
    cell.execute("create table listings (sym varchar(10), sector varchar(20))")
    cell.execute(
        "insert into listings values "
        "('ACME', 'industrial'), ('GLOBEX', 'conglomerate'), "
        "('INITECH', 'software'), ('UMBRELLA', 'pharma')"
    )

    spec = WindowSpec(WindowMode.COUNT, 200, 100)
    stats_inc = cell.submit_window_aggregate(
        "ticks_stats", "price", ["avg", "min", "max"],
        spec, group_by="sym", name="stats",
    )
    stats_reeval = cell.submit_window_aggregate(
        "ticks_reeval", "price", ["avg", "min", "max"],
        spec, group_by="sym", incremental=False, name="stats_reeval",
    )

    big_trades = cell.submit_continuous(
        "select t.sym, l.sector, t.price, t.qty from "
        "[select * from ticks_alerts where ticks_alerts.qty > 450] as t "
        "join listings l on t.sym = l.sym",
        name="big_trades",
    )

    receptor = cell.add_receptor(
        "feed", ["ticks_stats", "ticks_alerts", "ticks_reeval"]
    )
    for row in stock_ticks(5_000, seed=99):
        receptor.channel.push(row)
    cell.run_until_quiescent()

    rows = stats_inc.fetch()
    print(f"window stats rows: {len(rows)}; last few:")
    for window_id, sym, avg, low, high in rows[-4:]:
        print(
            f"  w{window_id} {sym:10s} avg={avg:8.2f} "
            f"min={low:8.2f} max={high:8.2f}"
        )

    alerts = big_trades.fetch()
    print(f"\nlarge-trade alerts: {len(alerts)}; first few:")
    for sym, sector, price, qty in alerts[:4]:
        print(f"  {sym:10s} [{sector}] {qty} @ {price:.2f}")

    # both §3.1 routes computed identical answers (up to float summation
    # order: the incremental route adds partial sums per basic window)...
    import math

    reeval_rows = stats_reeval.fetch()
    si = sorted(rows, key=lambda r: (r[0], r[1]))
    sr = sorted(reeval_rows, key=lambda r: (r[0], r[1]))
    same = len(si) == len(sr) and all(
        x[:2] == y[:2]
        and all(
            math.isclose(a, b, rel_tol=1e-9) for a, b in zip(x[2:], y[2:])
        )
        for x, y in zip(si, sr)
    )
    print(f"\nincremental == re-evaluation results: {same}")
    # ...but did very different amounts of work:
    inc_plan = cell.scheduler.get("stats").plan
    re_plan = cell.scheduler.get("stats_reeval").plan
    print(
        f"tuples touched — incremental: {inc_plan.values_processed}, "
        f"re-evaluation: {re_plan.values_processed} "
        f"({re_plan.values_processed / inc_plan.values_processed:.1f}x)"
    )


if __name__ == "__main__":
    main()
