#!/usr/bin/env python3
"""Quickstart: the Figure-1 pipeline in twenty lines.

A receptor feeds a basket, a continuous query (a factory) filters it, and
an emitter delivers results — the complete DataCell component chain, all
driven through the public SQL API.

Run:  python examples/quickstart.py
"""

from repro import DataCell, LogicalClock


def main() -> None:
    cell = DataCell(clock=LogicalClock())

    # 1. Declare a stream: baskets are tables whose tuples are consumed
    #    by the continuous queries that read them.
    cell.execute("create basket sensors (sensor int, temp double)")

    # 2. Register a continuous query.  The bracketed part is a *basket
    #    expression*: it picks (and consumes) the tuples of interest —
    #    here a predicate window over hot readings.
    alerts = cell.submit_continuous(
        "select s.sensor, s.temp "
        "from [select * from sensors where sensors.temp > 30.0] as s"
    )

    # 3. Stream data in.  Each insert stamps the implicit dc_time column.
    cell.insert("sensors", [(1, 21.5), (2, 45.2), (3, 30.1), (4, 38.0)])

    # 4. Let the Petri-net scheduler fire receptors/factories/emitters
    #    until the network drains.
    fired = cell.run_until_quiescent()
    print(f"scheduler fired {fired} transitions")

    # 5. Collect delivered results.
    for sensor, temp in alerts.fetch():
        print(f"ALERT sensor={sensor} temp={temp}")

    # Cool readings were outside the predicate window: still buffered.
    print("still buffered:", cell.query("select sensor, temp from sensors"))


if __name__ == "__main__":
    main()
