#!/usr/bin/env python3
"""Linear Road in miniature — the benchmark the paper reports (§5).

Builds the full continuous-query network (segment statistics, accident
detection, toll notification, account balances) over one shared position
basket, replays ten minutes of simulated traffic, validates every output
against an independent oracle, and prints the headline numbers.

Run:  python examples/linear_road_demo.py
"""

from repro.linearroad import LinearRoadConfig, LinearRoadHarness


def main() -> None:
    config = LinearRoadConfig(
        scale=0.5,
        duration=600,
        cars_per_minute=400,
        accident_probability=0.004,
        seed=11,
    )
    harness = LinearRoadHarness(config)
    result = harness.run()

    print(f"scale L={config.scale}, {config.duration}s of traffic")
    print(f"position reports     : {result.reports}")
    print(f"toll notifications   : {len(result.tolls)}")
    nonzero = [t for t in result.tolls if t[3] > 0]
    print(f"  with non-zero toll : {len(nonzero)}")
    print(f"accident alerts      : {len(result.alerts)}")
    print(f"balance responses    : {len(result.balances)}")
    print(f"throughput           : {result.throughput:,.0f} reports/s")
    print(
        f"response time        : max {result.max_response_time * 1e3:.1f} ms"
        f", avg {result.avg_response_time * 1e3:.1f} ms"
    )
    print(f"5-second deadline    : {'MET' if result.meets_deadline else 'MISSED'}")
    print(
        "oracle validation    : "
        + ("PASS" if result.valid else f"FAIL {result.validation_problems}")
    )
    if nonzero:
        vid, t, lav, toll = nonzero[0]
        print(
            f"\nexample: car {vid} entered a congested segment at t={t}s "
            f"(5-min avg speed {lav:.1f} mph) and was charged {toll} cents"
        )


if __name__ == "__main__":
    main()
