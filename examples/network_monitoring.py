#!/usr/bin/env python3
"""Network monitoring — the paper's flagship application domain.

Three standing queries over one packet-header stream, wired with the
*separate baskets* strategy (paper §2.5): the receptor replicates every
packet into one private basket per query, so each query consumes its own
copy independently.

1. an intrusion alert on a suspicious port (predicate window — only the
   matching packets are consumed by this query's basket expression);
2. per-destination traffic volume over sliding count windows
   (incremental basic-window aggregation);
3. a stream-table join against a blocklist of hosts.

The packet stream is replayed through the receptor in the textual wire
format, exactly as a network tap would deliver it.

Run:  python examples/network_monitoring.py
"""

from repro import DataCell, LogicalClock, WindowMode, WindowSpec
from repro.adapters.channels import format_tuple
from repro.adapters.generators import network_packets

PACKET_SCHEMA = "(src varchar(15), dst varchar(15), port int, size int)"


def main() -> None:
    cell = DataCell(clock=LogicalClock())
    # one private basket per standing query (separate-baskets strategy)
    for name in ("pkts_ids", "pkts_vol", "pkts_blk"):
        cell.execute(f"create basket {name} {PACKET_SCHEMA}")
    cell.execute("create table blocklist (host varchar(15))")
    cell.execute("insert into blocklist values ('10.0.0.7'), ('10.0.0.13')")

    # --- query 1: suspicious-port alert (predicate window) -----------
    intrusion = cell.submit_continuous(
        "select p.src, p.dst, p.size "
        "from [select * from pkts_ids where pkts_ids.port = 31337] as p",
        name="intrusion",
    )

    # --- query 2: per-destination volume over sliding windows --------
    volume = cell.submit_window_aggregate(
        "pkts_vol", "size", ["sum", "count_star"],
        WindowSpec(WindowMode.COUNT, 500, 250),
        group_by="dst",
        name="volume",
    )

    # --- query 3: traffic from blocked hosts (stream x table join) ---
    blocked = cell.submit_continuous(
        "select p.src, p.port from "
        "[select * from pkts_blk] as p "
        "join blocklist b on p.src = b.host",
        name="blocked",
    )

    # --- replay the packet capture through one replicating receptor --
    receptor = cell.add_receptor(
        "tap", ["pkts_ids", "pkts_vol", "pkts_blk"]
    )
    for row in network_packets(3_000, attack_rate=0.01, seed=8):
        receptor.channel.push(format_tuple(row))
    cell.run_until_quiescent()

    alerts = intrusion.fetch()
    print(f"intrusion alerts: {len(alerts)} (first 3: {alerts[:3]})")

    top = sorted(volume.fetch(), key=lambda r: -r[2])[:3]
    print("busiest destinations per window (dst, bytes, packets):")
    for window_id, dst, total, packets in top:
        print(f"  window {window_id}: {dst} {int(total)}B {packets}pkts")

    hits = blocked.fetch()
    print(f"blocklist hits: {len(hits)} (first 3: {hits[:3]})")

    ids_basket = cell.basket("pkts_ids")
    print(
        f"intrusion basket: {ids_basket.total_in} in, "
        f"{ids_basket.total_out} consumed by the predicate window, "
        f"{ids_basket.count} innocuous packets still buffered"
    )


if __name__ == "__main__":
    main()
