"""Experiment SYS — telemetry overhead of the self-monitoring loop.

Claim to pin: running the telemetry sampler *and* the HTTP endpoint next
to a busy pipeline costs at most 5% of Figure-1-style throughput.  The
sampler is an ordinary scheduler transition, so its cost is visible to
exactly the measurement it produces — this bench closes the loop by
measuring the measurer.

Method: the same selection pipeline is driven twice through a DataCell —
once dark (no system streams, no HTTP) and once with a fast sampler
(50 ms cadence, so it actually fires many times per run) plus a live
HTTP server.  Min-of-N wall times make the comparison robust to CI
noise; the overhead percentage is recorded into the repo-root
``BENCH_fig1.json`` artifact next to the F1 series.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_bench_fig1
from repro.core.engine import DataCell
from repro.obs.metrics import MetricsRegistry
from repro.obs.sysstreams import SystemStreamsConfig

N_TUPLES = 200_000
BATCH = 1_000
REPEATS = 5
MAX_OVERHEAD_PCT = 5.0


def _run_once(monitored: bool) -> float:
    """One full pipeline run; returns wall seconds for the hot loop."""
    cell = DataCell(
        metrics=MetricsRegistry(),
        system_streams=(
            SystemStreamsConfig(interval=0.05, retention=256)
            if monitored
            else None
        ),
    )
    server = cell.serve_http() if monitored else None
    cell.execute("create basket readings (v int)")
    query = cell.submit_continuous(
        "select r.v from [select * from readings "
        "where readings.v > 100 and readings.v < 200] as r"
    )
    rows = uniform_ints(N_TUPLES, 0, 1000, seed=7)
    started = time.perf_counter()
    for i in range(0, N_TUPLES, BATCH):
        cell.insert("readings", rows[i:i + BATCH])
        cell.run_until_quiescent()
    elapsed = time.perf_counter() - started
    assert query.results_delivered > 0
    if server is not None:
        assert server.running
        cell.stop()
    return elapsed


def test_sysstreams_overhead_under_five_percent():
    # warm both variants (allocator warmup, import side effects), then
    # interleave the timed repeats so drifting machine load hits both
    # variants equally instead of whichever ran last
    _run_once(False)
    _run_once(True)
    dark_times, monitored_times = [], []
    for _ in range(REPEATS):
        dark_times.append(_run_once(False))
        monitored_times.append(_run_once(True))
    dark = min(dark_times)
    monitored = min(monitored_times)
    overhead_pct = (monitored - dark) / dark * 100.0
    throughput_dark = N_TUPLES / dark
    throughput_monitored = N_TUPLES / monitored
    print_table(
        "SYS: telemetry sampler + HTTP endpoint overhead",
        ["variant", "seconds", "tuples/s"],
        [
            ("dark", dark, throughput_dark),
            ("sampler+http", monitored, throughput_monitored),
        ],
    )
    record_bench_fig1(
        "SYS_overhead",
        {
            "claim": "sampler + HTTP endpoint cost <= 5% of throughput",
            "overhead_pct": overhead_pct,
            "throughput_dark": throughput_dark,
            "throughput_monitored": throughput_monitored,
            "repeats": REPEATS,
            "tuples": N_TUPLES,
        },
    )
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"telemetry overhead {overhead_pct:.2f}% exceeds the "
        f"{MAX_OVERHEAD_PCT}% budget"
    )
