"""Experiment W1 — re-evaluation vs incremental window processing (§3.1).

Paper claim: "the incremental evaluation approach seems more promising
since it avoids processing the already known stream data"; with the basic
window model, a window slide only touches new tuples plus O(size/bw)
summary merges, while re-evaluation rescans the whole window every slide.

Reported table: (window, slide) vs tuples-touched and wall time for both
routes.  Shape: the work ratio reeval/incremental ≈ size/slide — the gap
grows as the slide shrinks relative to the window.
"""

import time

import numpy as np

from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import (
    IncrementalWindowAggregatePlan,
    ReEvalWindowAggregatePlan,
    WindowMode,
    WindowSpec,
)
from repro.kernel.types import AtomType

N_TUPLES = 30_000
CHUNK = 500
GEOMETRIES = [  # (window, slide)
    (1_000, 1_000),
    (1_000, 100),
    (1_000, 10),
    (5_000, 50),
    (10_000, 100),
]


def run(plan_cls, size, slide):
    clock = LogicalClock()
    inp = Basket("w_in", [("v", AtomType.DBL)], clock)
    plan = plan_cls(
        "w_in", "v", ["sum", "min", "max", "count"],
        WindowSpec(WindowMode.COUNT, size, slide), "w_out",
    )
    out = Basket("w_out", plan.output_schema(), clock)
    factory = Factory(
        "w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out]
    )
    rng = np.random.default_rng(3)
    values = rng.uniform(0, 100, N_TUPLES)
    started = time.perf_counter()
    for i in range(0, N_TUPLES, CHUNK):
        inp.insert_rows([(float(v),) for v in values[i : i + CHUNK]])
        factory.activate()
        out.consume_all()
    elapsed = time.perf_counter() - started
    return elapsed, plan


def test_window_incremental_vs_reevaluation(benchmark):
    table = []
    series = []
    for size, slide in GEOMETRIES:
        re_time, re_plan = run(ReEvalWindowAggregatePlan, size, slide)
        inc_time, inc_plan = run(IncrementalWindowAggregatePlan, size, slide)
        work_ratio = (
            re_plan.values_processed / max(1, inc_plan.values_processed)
        )
        table.append(
            (
                f"{size}/{slide}",
                re_plan.values_processed,
                inc_plan.values_processed,
                work_ratio,
                re_time,
                inc_time,
                re_time / inc_time,
            )
        )
        series.append(
            {
                "window": size,
                "slide": slide,
                "reeval_work": re_plan.values_processed,
                "incremental_work": inc_plan.values_processed,
                "reeval_s": re_time,
                "incremental_s": inc_time,
            }
        )
        assert re_plan.windows_emitted == inc_plan.windows_emitted
        # incremental touches each tuple exactly once
        assert inc_plan.values_processed == N_TUPLES
    print_table(
        "W1: sliding-window aggregation, re-evaluation vs incremental",
        ["window/slide", "reeval work", "incr work", "work ratio",
         "reeval s", "incr s", "speedup"],
        table,
    )
    record_result(
        "W1",
        {
            "claim": "incremental (basic window) avoids rescans; gap ~ size/slide",
            "series": series,
        },
    )
    # the work gap grows as slide shrinks: 1000/10 >> 1000/1000
    ratios = {row[0]: row[3] for row in table}
    assert ratios["1000/10"] > ratios["1000/1000"] * 10

    benchmark(
        lambda: run(IncrementalWindowAggregatePlan, 1_000, 100)
    )
