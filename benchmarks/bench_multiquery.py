"""Experiment M1 — multi-query scaling across strategies (§2.5/§3.2).

Paper claim: exploiting query similarities (shared baskets, shared
sub-plans) is what lets the engine meet deadlines as the number of
standing queries grows.

Reported series: number of standing queries vs sustained throughput for
separate baskets, shared baskets, and shared sub-plan factories (all
queries are range selections over one attribute with overlapping ranges
inside [200, 800)).  Shape: separate degrades fastest (per-query copies);
shared saves the copy; the shared sub-plan saves scan work too once the
cover is selective.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.scheduler import Scheduler
from repro.core.splitting import build_shared_subplan_pipeline
from repro.core.strategies import (
    RangeQuery,
    build_separate_pipeline,
    build_shared_pipeline,
)
from repro.kernel.types import AtomType

N_TUPLES = 4_000
CHUNK = 500
QUERY_COUNTS = [1, 4, 16, 64]


def make_queries(k: int):
    # overlapping ranges inside [200, 800): the shared-subplan cover
    # selects 60% of the stream once, instead of k scans
    return [
        RangeQuery(f"q{i}", "v", 200 + (i * 7) % 500, 300 + (i * 7) % 500)
        for i in range(k)
    ]


def run(builder, k: int) -> float:
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    net = builder(stream, make_queries(k), clock)
    scheduler = Scheduler()
    for transition in net.all_transitions():
        scheduler.register(transition)
    rows = uniform_ints(N_TUPLES, 0, 999, seed=6)
    started = time.perf_counter()
    for i in range(0, N_TUPLES, CHUNK):
        stream.insert_rows(rows[i : i + CHUNK])
        scheduler.run_until_quiescent()
    elapsed = time.perf_counter() - started
    return N_TUPLES / elapsed


def test_multiquery_scaling(benchmark):
    table = []
    series = []
    for k in QUERY_COUNTS:
        separate = run(build_separate_pipeline, k)
        shared = run(build_shared_pipeline, k)
        subplan = run(build_shared_subplan_pipeline, k)
        table.append((k, separate, shared, subplan))
        series.append(
            {
                "queries": k,
                "separate": separate,
                "shared": shared,
                "shared_subplan": subplan,
            }
        )
    print_table(
        "M1: throughput (tuples/s) vs number of standing queries",
        ["queries", "separate", "shared", "shared sub-plan"],
        table,
    )
    record_result(
        "M1",
        {"claim": "sharing sustains throughput as queries grow",
         "series": series},
    )
    # at 64 queries the sharing strategies must beat separate baskets
    # by a clear margin — replication cost grows with the query count
    last = table[-1]
    assert last[2] > last[1] * 1.05, (
        f"shared ({last[2]:.0f}/s) must beat separate ({last[1]:.0f}/s) "
        "at 64 standing queries"
    )

    benchmark(lambda: run(build_shared_pipeline, 16))
