"""Experiment W2 — scheduler-gated window firing (§3.1, §2.4).

Paper claim: "the role of the scheduler is very important ... to trigger
the evaluation of the proper factories when there are enough tuples to
fill one or more windows.  For count-based windows all we need to do is to
monitor the number of tuples in baskets."

We compare the same tumbling-window factory driven two ways: gated
(``min_tuples`` = tuples still needed for the next window, updated from
the plan's ``tuples_needed()``) vs naive (fire on any non-empty basket).
Same results either way; the gated scheduler activates the factory
windows-many times instead of chunks-many times.

Reported table: firing counts + wall time per mode, across chunk sizes.
"""

import time

from repro.adapters.generators import gaussian_doubles
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import (
    IncrementalWindowAggregatePlan,
    WindowMode,
    WindowSpec,
)
from repro.kernel.types import AtomType

N_TUPLES = 20_000
WINDOW = 1_000
CHUNKS = [10, 50, 200]


def run(chunk: int, gated: bool):
    clock = LogicalClock()
    inp = Basket("w_in", [("v", AtomType.DBL)], clock)
    plan = IncrementalWindowAggregatePlan(
        "w_in", "v", ["avg"], WindowSpec(WindowMode.COUNT, WINDOW), "w_out"
    )
    out = Basket("w_out", plan.output_schema(), clock)
    binding = InputBinding(inp, ConsumeMode.ALL)
    factory = Factory("w", plan, [binding], [out])
    rows = gaussian_doubles(N_TUPLES, 50, 10, seed=4)
    emitted = 0
    started = time.perf_counter()
    for i in range(0, N_TUPLES, chunk):
        inp.insert_rows(rows[i : i + chunk])
        if gated:
            binding.min_tuples = max(1, plan.tuples_needed())
        if factory.enabled():
            factory.activate()
            if gated:
                binding.min_tuples = max(1, plan.tuples_needed())
        emitted = out.count + emitted
        out.consume_all()
    elapsed = time.perf_counter() - started
    return factory.activations, plan.windows_emitted, elapsed


def test_window_trigger_scheduling(benchmark):
    table = []
    series = []
    for chunk in CHUNKS:
        gated_acts, gated_windows, gated_time = run(chunk, gated=True)
        naive_acts, naive_windows, naive_time = run(chunk, gated=False)
        assert gated_windows == naive_windows == N_TUPLES // WINDOW
        table.append(
            (chunk, gated_acts, naive_acts, gated_time, naive_time)
        )
        series.append(
            {
                "chunk": chunk,
                "gated_activations": gated_acts,
                "naive_activations": naive_acts,
            }
        )
        # the gate fires the factory ~once per completed window,
        # the naive scheduler once per chunk
        assert gated_acts <= gated_windows + 1
        assert naive_acts >= N_TUPLES // chunk - 1
    print_table(
        "W2: factory activations, window-gated vs naive scheduling "
        f"(window={WINDOW}, {N_TUPLES} tuples)",
        ["chunk", "gated activations", "naive activations", "gated s",
         "naive s"],
        table,
    )
    record_result(
        "W2",
        {
            "claim": "scheduler fires window factories only when windows fill",
            "series": series,
        },
    )

    benchmark(lambda: run(50, gated=True))
