"""Experiment A1 — factory activation overhead (Algorithm 1).

Paper claim (§2.3): the factory loop — lock, bulk process, consume,
append, unlock, suspend — is a cheap bulk operation; its fixed cost is
paid once per activation, not once per tuple.

Reported series: waiting-tuples-per-activation vs per-tuple cost.  Shape:
per-tuple cost collapses as activations carry more tuples (fixed cost
amortized), and the empty-activation enablement check is far cheaper than
an activation.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.strategies import RangeQuery, SelectPlan
from repro.kernel.types import AtomType

BATCHES = [1, 10, 100, 1_000, 10_000]
ACTIVATIONS = 50


def build():
    clock = LogicalClock()
    b1 = Basket("a_in", [("v", AtomType.INT)], clock)
    b2 = Basket("a_out", [("v", AtomType.INT)], clock)
    plan = SelectPlan(RangeQuery("q", "v", 0, 500), "a_in", "a_out")
    factory = Factory("q", plan, [InputBinding(b1, ConsumeMode.ALL)], [b2])
    return b1, b2, factory


def measure(per_activation: int) -> float:
    """Seconds per tuple with `per_activation` tuples per firing."""
    b1, b2, factory = build()
    rows = uniform_ints(per_activation, 0, 1000, seed=1)
    total = 0.0
    for _ in range(ACTIVATIONS):
        b1.insert_rows(rows)
        started = time.perf_counter()
        factory.activate()
        total += time.perf_counter() - started
        b2.consume_all()
    return total / (ACTIVATIONS * per_activation)


def test_factory_activation_overhead(benchmark):
    points = []
    for batch in BATCHES:
        per_tuple = measure(batch)
        points.append((batch, per_tuple * 1e6, 1.0 / per_tuple))
    print_table(
        "A1: factory activation cost amortization",
        ["tuples/activation", "us per tuple", "tuples/s"],
        points,
    )
    # enablement check cost (the scheduler's per-iteration probe)
    b1, _, factory = build()
    started = time.perf_counter()
    for _ in range(10_000):
        factory.enabled()
    check_cost = (time.perf_counter() - started) / 10_000
    print(f"enablement check: {check_cost * 1e6:.2f} us")
    record_result(
        "A1",
        {
            "claim": "factory loop cost is per-activation, not per-tuple",
            "series": [
                {"batch": b, "us_per_tuple": c} for b, c, _ in points
            ],
            "enablement_check_us": check_cost * 1e6,
        },
    )
    per_tuple = {b: c for b, c, _ in points}
    assert per_tuple[10_000] < per_tuple[1] / 10, (
        "per-tuple cost must collapse with batching"
    )

    b1, b2, factory = build()
    rows = uniform_ints(1_000, 0, 1000, seed=1)

    def activation():
        b1.insert_rows(rows)
        factory.activate()
        b2.consume_all()

    benchmark(activation)
