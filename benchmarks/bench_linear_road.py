"""Experiment LR — Linear Road (paper §5).

Paper claim: the DataCell prototype "was able to achieve out of the box
good performance on the Linear Road benchmark".  The benchmark's own
success criterion: every toll/accident notification must be issued within
5 seconds of the triggering position report, for a given scale L.

We replay simulated traffic (see DESIGN.md substitution note) through the
full query network — shared position basket, segment-statistics, accident
and toll factories, emitters — tick by tick, and report per-scale:
reports processed, notifications, max/avg per-tick response time, report
throughput, whether the 5s deadline held, and whether the outputs match
the independent oracle.

Shape to reproduce: the deadline holds with headroom at laptop scales and
response time grows with L.
"""

from repro.bench import print_table, record_result
from repro.linearroad import LinearRoadConfig, LinearRoadHarness

SCALES = [0.25, 0.5, 1.0]


def run(scale: float):
    config = LinearRoadConfig(
        scale=scale,
        duration=300,
        cars_per_minute=300,
        accident_probability=0.003,
        seed=17,
    )
    harness = LinearRoadHarness(config)
    return harness.run()


def test_linear_road(benchmark):
    table = []
    series = []
    results = {}
    for scale in SCALES:
        result = run(scale)
        assert result.valid, result.validation_problems
        nonzero = sum(1 for t in result.tolls if t[3] > 0)
        table.append(
            (
                scale,
                result.reports,
                len(result.tolls),
                nonzero,
                len(result.alerts),
                result.max_response_time,
                result.avg_response_time,
                result.throughput,
                "yes" if result.meets_deadline else "NO",
            )
        )
        series.append(
            {
                "scale": scale,
                "reports": result.reports,
                "tolls": len(result.tolls),
                "nonzero_tolls": nonzero,
                "alerts": len(result.alerts),
                "max_response_s": result.max_response_time,
                "throughput": result.throughput,
                "meets_deadline": result.meets_deadline,
            }
        )
        results[scale] = result
    print_table(
        "LR: Linear Road, validated runs per scale",
        ["L", "reports", "tolls", "nonzero", "alerts", "max rt (s)",
         "avg rt (s)", "reports/s", "5s deadline"],
        table,
    )
    record_result(
        "LR",
        {"claim": "out-of-the-box good performance on Linear Road",
         "series": series},
    )
    assert all(r.meets_deadline for r in results.values()), (
        "the 5-second notification deadline must hold at all scales"
    )
    assert results[1.0].reports > results[0.25].reports

    benchmark(lambda: run(0.25))
