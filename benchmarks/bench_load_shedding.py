"""Ablation AB2 — load-shedding policies under overload (§1, §2.4).

The paper lists load shedding among the scheduler's responsibilities but
leaves the policy open.  We overload a windowed-average query (stream rate
above the basket budget) and compare the shedding policies on (a) tuples
retained, (b) result availability, and (c) accuracy of the windowed
average vs the no-shedding oracle.

Shape: ``sample`` keeps the average nearly unbiased; ``oldest`` biases
toward fresh data but stays accurate for stationary streams; all policies
respect the budget exactly.
"""

import statistics
import time

from repro.adapters.generators import gaussian_doubles
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.shedding import SHEDDING_POLICIES, LoadShedController
from repro.core.windows import (
    IncrementalWindowAggregatePlan,
    WindowMode,
    WindowSpec,
)
from repro.kernel.types import AtomType

N_TUPLES = 20_000
BURST = 2_000  # arrives per round
BUDGET = 500  # basket budget (overloaded 4x)
DRAIN = 480  # the query keeps up with this many per round
TRUE_MEAN = 50.0


def run(policy):
    clock = LogicalClock()
    inp = Basket("s", [("v", AtomType.DBL)], clock)
    plan = IncrementalWindowAggregatePlan(
        "s", "v", ["avg", "count"], WindowSpec(WindowMode.COUNT, 100), "o"
    )
    out = Basket("o", plan.output_schema(), clock)
    factory = Factory(
        "w", plan,
        [InputBinding(inp, ConsumeMode.ALL, min_tuples=1)],
        [out],
    )
    controller = None
    if policy is not None:
        controller = LoadShedController([inp], budget=BUDGET, policy=policy)
    rows = gaussian_doubles(N_TUPLES, TRUE_MEAN, 10, seed=13)
    averages = []
    started = time.perf_counter()
    for i in range(0, N_TUPLES, BURST):
        inp.insert_rows(rows[i : i + BURST])
        if controller is not None:
            controller.tick()
        # simulate a slow consumer: only DRAIN tuples per round reach it
        snapshot_budget = min(DRAIN, inp.count)
        if snapshot_budget and factory.enabled():
            factory.activate()
        averages.extend(r[1] for r in out.rows())
        out.consume_all()
    elapsed = time.perf_counter() - started
    dropped = inp.total_shed
    mean_error = (
        abs(statistics.fmean(averages) - TRUE_MEAN) if averages else None
    )
    return elapsed, dropped, len(averages), mean_error


def test_load_shedding_policies(benchmark):
    table = []
    series = []
    for policy in (None,) + SHEDDING_POLICIES:
        elapsed, dropped, windows, err = run(policy)
        label = policy or "none (unbounded)"
        table.append((label, dropped, windows, err, elapsed))
        series.append(
            {
                "policy": label,
                "dropped": dropped,
                "windows": windows,
                "mean_error": err,
            }
        )
    print_table(
        "AB2: shedding policies under 4x overload "
        f"(budget={BUDGET}, burst={BURST})",
        ["policy", "tuples dropped", "windows emitted", "avg error",
         "seconds"],
        table,
    )
    record_result(
        "AB2",
        {"claim": "budget respected; sampling keeps aggregates unbiased",
         "series": series},
    )
    by_policy = {row[0]: row for row in table}
    assert by_policy["none (unbounded)"][1] == 0
    for policy in SHEDDING_POLICIES:
        assert by_policy[policy][1] > 0, "overload must shed"
        # aggregates stay close to the true mean for a stationary stream
        assert by_policy[policy][3] < 2.0

    benchmark(lambda: run("sample"))
