"""Experiment B1 — batch (DataCell) vs tuple-at-a-time (specialized DSMS).

Paper claim (§4): "Tuple-at-a-time processing, used in other systems,
incurs a significant overhead while batch processing provides the
flexibility for better query scheduling, and exploitation of the system
resources."

Both engines run the same standing selection over the same stream.  The
DataCell side processes basket batches through columnar kernel operators;
the baseline dispatches every tuple through an operator pipeline.

Reported series: ingest batch size vs throughput for the DataCell, with
the tuple-engine's (batch-independent) throughput as the baseline line.
Shape: DataCell at batch>=100 beats the tuple engine by a growing factor;
at batch=1 the DataCell's scheduling overhead makes it comparable or
slower — batching is exactly what buys the win.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.baselines import SelectOperator, TupleEngine
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.strategies import RangeQuery, SelectPlan
from repro.kernel.types import AtomType

N_TUPLES = 50_000
BATCHES = [1, 10, 100, 1_000, 10_000]


def tuple_engine_throughput(rows) -> float:
    engine = TupleEngine()
    engine.register("q", SelectOperator(lambda r: 100 <= r[0] <= 200))
    started = time.perf_counter()
    engine.push_many(rows)
    elapsed = time.perf_counter() - started
    return len(rows) / elapsed


def datacell_throughput(rows, batch: int) -> float:
    """Rows arrive pre-parsed in both engines; this measures the
    *processing model* — columnar bulk evaluation vs per-tuple operator
    dispatch — which is the §4 comparison."""
    clock = LogicalClock()
    b1 = Basket("b1", [("v", AtomType.INT)], clock)
    b2 = Basket("b2", [("v", AtomType.INT)], clock)
    plan = SelectPlan(RangeQuery("q", "v", 100, 200), "b1", "b2")
    factory = Factory("q", plan, [InputBinding(b1, ConsumeMode.ALL)], [b2])
    started = time.perf_counter()
    for i in range(0, len(rows), batch):
        b1.insert_rows(rows[i : i + batch])
        factory.activate()
        b2.consume_all()
    elapsed = time.perf_counter() - started
    return len(rows) / elapsed


def test_batch_vs_tuple_at_a_time(benchmark):
    rows = uniform_ints(N_TUPLES, 0, 1000, seed=21)
    baseline = max(tuple_engine_throughput(rows) for _ in range(3))
    table = []
    series = []
    for batch in BATCHES:
        repeats = 3 if batch >= 100 else 1
        throughput = max(
            datacell_throughput(rows, batch) for _ in range(repeats)
        )
        table.append((batch, throughput, baseline, throughput / baseline))
        series.append({"batch": batch, "datacell": throughput})
    print_table(
        "B1: DataCell (batched) vs tuple-at-a-time DSMS baseline",
        ["batch", "datacell tuples/s", "tuple-engine tuples/s", "ratio"],
        table,
    )
    record_result(
        "B1",
        {
            "claim": "batch processing beats tuple-at-a-time",
            "baseline_throughput": baseline,
            "series": series,
        },
    )
    ratios = {b: r for b, _, _, r in table}
    assert ratios[10_000] > 1.0, (
        "batched DataCell must beat the tuple-at-a-time baseline"
    )
    assert ratios[10_000] > ratios[1] * 3, (
        "the win must come from batching (crossover shape)"
    )
    assert ratios[1] < 1.0, (
        "at batch=1 the DataCell's activation overhead should lose — "
        "that crossover is the paper's argument for batching"
    )

    benchmark(lambda: datacell_throughput(rows, 10_000))
