"""Experiment D1 — durability overhead and recovery time.

Paper claim (§2.2): building on a DBMS kernel means the stream engine
inherits persistence "for free" — the incremental cost of durability
must be a dial, not a redesign.  Two measurements:

* **ingest overhead per fsync policy** — the same filter pipeline with
  durability disabled, then WAL-on with ``off``/``interval``/``always``
  fsync.  ``interval`` (the default) is the headline number: bounded
  power-loss window at a small fraction of ``always``'s cost.
* **recovery time vs WAL length** — kill after N ingested rows, time
  ``recover()`` in a fresh engine.  Replay goes through the normal
  ingest path, so recovery scales with the WAL suffix, which
  checkpoints keep short.
"""

import tempfile
import time
from pathlib import Path

from repro.bench import print_table, record_result
from repro.core.engine import DataCell
from repro.durability import DurabilityConfig
from repro.kernel.types import AtomType

ROWS = 20_000
BATCH = 500
SQL = "select x.a, x.b from [select * from feed where feed.a > 500] as x"


def _build(directory, fsync):
    durability = (
        DurabilityConfig(directory=directory, fsync=fsync)
        if directory is not None
        else None
    )
    cell = DataCell(durability=durability)
    cell.create_basket("feed", [("a", AtomType.INT), ("b", AtomType.INT)])
    handle = cell.submit_continuous(SQL, name="q")
    return cell, handle


def _batches(n=ROWS):
    return [
        [((i + j) % 1000, j % 7) for j in range(BATCH)]
        for i in range(0, n, BATCH)
    ]


def _ingest_seconds(directory, fsync):
    cell, _ = _build(directory, fsync)
    feed = cell.basket("feed")
    batches = _batches()
    started = time.perf_counter()
    for batch in batches:
        feed.insert_rows(batch)
        cell.run_until_quiescent()
    elapsed = time.perf_counter() - started
    if cell.durability is not None:
        cell.durability.close()
    return elapsed


def test_ingest_overhead_per_fsync_policy(benchmark):
    with tempfile.TemporaryDirectory(prefix="datacell-bench-") as tmp:
        tmp = Path(tmp)
        baseline = _ingest_seconds(None, None)
        rows_per_s = ROWS / baseline
        table = [("disabled", baseline * 1e3, rows_per_s, 0.0)]
        overheads = {}
        for policy in ("off", "interval", "always"):
            seconds = _ingest_seconds(tmp / policy, policy)
            overhead = (seconds / baseline - 1.0) * 100.0
            overheads[policy] = overhead
            table.append(
                (policy, seconds * 1e3, ROWS / seconds, overhead)
            )
        print_table(
            "D1: ingest+process cost per fsync policy "
            f"({ROWS} rows, batches of {BATCH})",
            ["durability", "total ms", "rows/s", "overhead %"],
            table,
        )
        record_result(
            "D1_fsync_overhead",
            {
                "claim": "durability is a dial: WAL overhead scales with "
                "the fsync policy, interval is the cheap default",
                "rows": ROWS,
                "batch": BATCH,
                "baseline_seconds": baseline,
                "series": [
                    {
                        "policy": name,
                        "seconds": ms / 1e3,
                        "rows_per_s": rate,
                        "overhead_pct": pct,
                    }
                    for name, ms, rate, pct in table
                ],
                "interval_overhead_pct": overheads["interval"],
            },
        )

        cell, _ = _build(tmp / "bench", "interval")
        feed = cell.basket("feed")
        batch = _batches(BATCH)[0]

        def one_batch():
            feed.insert_rows(batch)
            cell.run_until_quiescent()

        benchmark(one_batch)
        cell.durability.close()


def test_recovery_time_vs_wal_length(benchmark):
    lengths = (1_000, 5_000, 20_000)
    table = []
    series = []
    with tempfile.TemporaryDirectory(prefix="datacell-bench-") as tmp:
        tmp = Path(tmp)
        for n in lengths:
            root = tmp / f"wal-{n}"
            cell, _ = _build(root, "off")
            feed = cell.basket("feed")
            for batch in _batches(n):
                feed.insert_rows(batch)
                cell.run_until_quiescent()
            wal_bytes = cell.durability.stats()["wal_bytes"]
            cell.durability.abandon()

            cell2, _ = _build(root, "off")
            started = time.perf_counter()
            report = cell2.recover()
            seconds = time.perf_counter() - started
            cell2.run_until_quiescent()
            cell2.durability.close()
            table.append(
                (n, wal_bytes, report.wal_records, seconds * 1e3,
                 n / seconds)
            )
            series.append(
                {
                    "rows": n,
                    "wal_bytes": int(wal_bytes),
                    "wal_records": report.wal_records,
                    "seconds": seconds,
                }
            )
        print_table(
            "D1: recovery time vs WAL length (no checkpoint, full replay)",
            ["rows in WAL", "wal bytes", "records", "recovery ms",
             "rows/s replayed"],
            table,
        )
        record_result(
            "D1_recovery_time",
            {
                "claim": "recovery replays the WAL suffix through the "
                "normal ingest path; checkpoints bound its length",
                "series": series,
            },
        )

        # benchmark one recovery of the shortest WAL
        root = tmp / f"wal-{lengths[0]}"

        def one_recovery():
            cell, _ = _build(root, "off")
            cell.recover()
            cell.durability.abandon()

        benchmark(one_recovery)
