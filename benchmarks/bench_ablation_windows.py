"""Ablation AB1 — basic-window width (§3.1 design choice).

DESIGN.md fixes ``bw = gcd(size, slide)`` — the *coarsest* partition that
still aligns with every window boundary.  This ablation forces finer
widths and measures the cost: each emission merges ``size/bw`` summaries,
so halving bw doubles merge work without touching any fewer tuples.  The
gcd choice is therefore optimal within the basic-window design space, and
the table shows by how much.
"""

import time

import numpy as np

from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import (
    IncrementalWindowAggregatePlan,
    WindowMode,
    WindowSpec,
)
from repro.kernel.types import AtomType

N_TUPLES = 30_000
SIZE, SLIDE = 2_000, 500  # natural bw = gcd = 500
BW_CHOICES = [500, 250, 100, 50, 10]
CHUNK = 500


def run(bw: int):
    clock = LogicalClock()
    inp = Basket("w_in", [("v", AtomType.DBL)], clock)
    plan = IncrementalWindowAggregatePlan(
        "w_in", "v", ["sum", "min", "max"],
        WindowSpec(WindowMode.COUNT, SIZE, SLIDE), "w_out",
        bw_override=bw,
    )
    out = Basket("w_out", plan.output_schema(), clock)
    factory = Factory("w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out])
    rng = np.random.default_rng(12)
    values = rng.uniform(0, 100, N_TUPLES)
    started = time.perf_counter()
    for i in range(0, N_TUPLES, CHUNK):
        inp.insert_rows([(float(v),) for v in values[i : i + CHUNK]])
        factory.activate()
        out.consume_all()
    elapsed = time.perf_counter() - started
    return elapsed, plan


def test_basic_window_width_ablation(benchmark):
    table = []
    series = []
    reference_rows = None
    for bw in BW_CHOICES:
        elapsed, plan = run(bw)
        table.append(
            (bw, SIZE // bw, plan.merges_done, plan.windows_emitted, elapsed)
        )
        series.append(
            {"bw": bw, "merges": plan.merges_done, "seconds": elapsed}
        )
        if reference_rows is None:
            reference_rows = plan.windows_emitted
        else:
            assert plan.windows_emitted == reference_rows, (
                "bw is an implementation knob: results must not change"
            )
    print_table(
        f"AB1: basic-window width ablation (window={SIZE}, slide={SLIDE})",
        ["bw", "summaries/window", "total merges", "windows", "seconds"],
        table,
    )
    record_result(
        "AB1",
        {"claim": "bw = gcd(size, slide) minimizes merge work",
         "series": series},
    )
    merges = {bw: m for bw, _, m, _, _ in table}
    assert merges[10] > merges[500] * 10, (
        "finer basic windows must multiply merge work"
    )

    benchmark(lambda: run(500))
