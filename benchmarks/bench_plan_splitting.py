"""Experiment P1 — query-plan splitting (paper §3.2).

Paper claim: "With the shared baskets strategy we force q1 to wait for q2
to finish before we allow the receptor to place more tuples in the shared
basket ... A simple solution is to split a query plan into multiple
parts, such that part of the input can be released as soon as possible,
effectively eliminating the need for a fast query to wait for a slow one."

Setup: a light selection (q_fast) and a deliberately heavy aggregation
(q_slow) share one stream.  Without splitting, each scheduler step can
only admit the next batch after *both* shared readers ran, so q_fast's
results are delayed behind q_slow's processing.  With a splitter factory,
the shared input is copied out and released immediately; q_fast's results
for a batch are available after (splitter + q_fast) work only.

Reported metric: wall time from a batch's arrival until q_fast's results
for it are delivered (fast-path latency), with and without splitting.
Shape: splitting cuts fast-path latency by roughly the heavy query's
processing share; total work is unchanged.
"""

import time
from typing import Dict

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.basket import Basket, BasketSnapshot
from repro.core.clock import LogicalClock
from repro.core.factory import (
    CallablePlan,
    ConsumeMode,
    Factory,
    InputBinding,
    PlanOutput,
)
from repro.core.splitting import build_split_pipeline
from repro.core.strategies import RangeQuery, SelectPlan
from repro.kernel.bat import bat_from_values
from repro.kernel.mal import ResultSet
from repro.kernel.types import AtomType

N_BATCHES = 15
BATCH = 2_000
HEAVY_REPEAT = 1_200  # the slow plan rescans its input this many times


def heavy_plan(input_name: str, output_name: str):
    """An expensive aggregate: repeated full scans (simulated complexity)."""

    def plan(snapshots: Dict[str, BasketSnapshot]):
        snap = snapshots[input_name]
        if snap.count == 0:
            return None
        col = snap.column("v")
        total = 0.0
        for _ in range(HEAVY_REPEAT):
            total += float(col.tail.astype("float64").sum())
        return PlanOutput(
            results={
                output_name: ResultSet(
                    ["v"], [bat_from_values(AtomType.INT, [int(total) % 1000])]
                )
            }
        )

    return plan


def run_shared() -> float:
    """No splitting: both queries are shared readers of the stream."""
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    fast_out = Basket("fast_out", [("v", AtomType.INT)], clock)
    slow_out = Basket("slow_out", [("v", AtomType.INT)], clock)
    fast = Factory(
        "fast",
        SelectPlan(RangeQuery("fast", "v", 0, 99), "s", "fast_out"),
        [InputBinding(stream, ConsumeMode.SHARED)],
        [fast_out],
    )
    slow = Factory(
        "slow",
        CallablePlan(heavy_plan("s", "slow_out")),
        [InputBinding(stream, ConsumeMode.SHARED)],
        [slow_out],
    )
    rows = uniform_ints(BATCH, 0, 1000, seed=2)
    fast_latency = 0.0
    for _ in range(N_BATCHES):
        stream.insert_rows(rows)
        started = time.perf_counter()
        # the scheduler's shared-basket round: both readers must run
        # before the basket drains and the next batch is admitted
        slow.activate()
        fast.activate()
        fast_latency += time.perf_counter() - started
        fast_out.consume_all()
        slow_out.consume_all()
    return fast_latency / N_BATCHES


def run_split() -> float:
    """Splitting: a cheap splitter releases the input immediately."""
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    net = build_split_pipeline(
        stream,
        [
            (RangeQuery("fast", "v", 0, 99), None),
            (
                RangeQuery("slow", "v", 0, 999),
                CallablePlan(heavy_plan("s_slow_stage", "slow_out")),
            ),
        ],
        clock,
    )
    splitter, fast, slow = net.factories
    rows = uniform_ints(BATCH, 0, 1000, seed=2)
    fast_latency = 0.0
    for _ in range(N_BATCHES):
        stream.insert_rows(rows)
        started = time.perf_counter()
        splitter.activate()  # releases the shared input
        fast.activate()  # fast results ready — slow has not run yet
        fast_latency += time.perf_counter() - started
        slow.activate()  # heavy work happens off the fast path
        for basket in net.output_baskets.values():
            basket.consume_all()
    return fast_latency / N_BATCHES


def test_plan_splitting_frees_fast_queries(benchmark):
    shared_latency = run_shared()
    split_latency = run_split()
    speedup = shared_latency / split_latency
    print_table(
        "P1: fast-query result latency with a heavy co-query",
        ["mode", "fast-path latency (ms/batch)", "speedup"],
        [
            ("shared (no split)", shared_latency * 1e3, 1.0),
            ("split plans", split_latency * 1e3, speedup),
        ],
    )
    record_result(
        "P1",
        {
            "claim": "splitting frees fast queries from slow co-readers",
            "shared_latency_s": shared_latency,
            "split_latency_s": split_latency,
            "speedup": speedup,
        },
    )
    assert speedup > 3, (
        "fast query must not pay for the heavy query after splitting"
    )

    benchmark(run_split)
