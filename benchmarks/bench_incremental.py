"""Experiment INC — Z-set delta execution vs re-evaluation.

The incremental mode's performance claim (DBSP, and the paper's §3.1
"incremental evaluation ... avoids processing the already known stream
data"): per-firing cost is ``O(|delta|)``, independent of window size.
Re-evaluation rescans the whole window on every slide, so its cost per
tuple grows with the overlap ratio ``size/slide`` — at 100:1 and up the
delta route must win by well over the 5x acceptance floor.

Series reported to ``BENCH_incremental.json``:

* ``INC_window`` — sliding COUNT-window aggregates (COUNT and SUM) at
  10:1 / 100:1 / 1000:1 overlap, delta plan vs re-eval plan;
* ``INC_join`` — the sliding equi-join as a Z-set circuit vs the
  symmetric-hash plan (both are incremental; the circuit must hold
  parity while adding retraction bookkeeping).
"""

import time

import numpy as np

from repro.bench import print_table, record_bench_incremental
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.factory import ConsumeMode, Factory, InputBinding
from repro.core.windows import (
    ReEvalWindowAggregatePlan,
    SlidingWindowJoinPlan,
    WindowMode,
    WindowSpec,
)
from repro.incremental.windows import (
    DeltaWindowAggregatePlan,
    DeltaWindowJoinPlan,
)
from repro.kernel.types import AtomType

N_TUPLES = 250_000
CHUNK = 5_000
GEOMETRIES = [  # (window, slide) — overlap 10:1, 100:1, 1000:1
    (50_000, 5_000),
    (50_000, 500),
    (50_000, 50),
]
AGGREGATES = ("count", "sum")

N_JOIN = 8_000
JOIN_WINDOW_S = 4.0


def run_window(plan_cls, size, slide, aggregate):
    """Drive one window plan; return summed plan-evaluation seconds.

    The measured quantity is the factory's per-activation
    ``plan_seconds`` — the plan evaluation alone.  End-to-end wall time
    is dominated by the shared driver (python-tuple ingest, per-window
    emission), identical on both routes, which would mask the
    O(|delta|)-vs-O(size) separation this experiment exists to show.
    """
    clock = LogicalClock()
    inp = Basket("w_in", [("v", AtomType.DBL)], clock)
    plan = plan_cls(
        "w_in", "v", [aggregate],
        WindowSpec(WindowMode.COUNT, size, slide), "w_out",
    )
    out = Basket("w_out", plan.output_schema(), clock)
    factory = Factory(
        "w", plan, [InputBinding(inp, ConsumeMode.ALL)], [out]
    )
    rng = np.random.default_rng(11)
    values = rng.uniform(0, 100, N_TUPLES)
    plan_seconds = 0.0
    for i in range(0, N_TUPLES, CHUNK):
        inp.insert_rows([(float(v),) for v in values[i : i + CHUNK]])
        plan_seconds += factory.activate().plan_seconds
        out.consume_all()
    return plan_seconds, plan


def run_join(plan_cls):
    clock = LogicalClock()
    left = Basket("jl", [("k", AtomType.LNG)], clock)
    right = Basket("jr", [("k", AtomType.LNG)], clock)
    plan = plan_cls("jl", "jr", "k", "k", JOIN_WINDOW_S, "j_out")
    out = Basket(
        "j_out",
        [
            ("key", AtomType.LNG),
            ("left_time", AtomType.TIMESTAMP),
            ("right_time", AtomType.TIMESTAMP),
        ],
        clock,
    )
    factory = Factory(
        "j",
        plan,
        [
            InputBinding(left, ConsumeMode.ALL),
            InputBinding(right, ConsumeMode.ALL),
        ],
        [out],
    )
    rng = np.random.default_rng(13)
    keys = rng.integers(0, 200, 2 * N_JOIN)
    started = time.perf_counter()
    for i in range(0, N_JOIN, CHUNK):
        clock.advance(1.0)
        left.insert_rows([(int(k),) for k in keys[i : i + CHUNK]])
        right.insert_rows(
            [(int(k),) for k in keys[N_JOIN + i : N_JOIN + i + CHUNK]]
        )
        factory.activate()
        out.consume_all()
    return time.perf_counter() - started, plan


def test_delta_window_aggregates_beat_reevaluation(benchmark):
    table = []
    series = []
    for aggregate in AGGREGATES:
        for size, slide in GEOMETRIES:
            re_time, re_plan = run_window(
                ReEvalWindowAggregatePlan, size, slide, aggregate
            )
            inc_time, inc_plan = run_window(
                DeltaWindowAggregatePlan, size, slide, aggregate
            )
            assert re_plan.windows_emitted == inc_plan.windows_emitted
            speedup = re_time / inc_time
            overlap = size // slide
            table.append(
                (
                    f"{aggregate} {size}/{slide}",
                    overlap,
                    re_plan.values_processed,
                    inc_plan.values_processed,
                    re_time,
                    inc_time,
                    speedup,
                )
            )
            series.append(
                {
                    "aggregate": aggregate,
                    "window": size,
                    "slide": slide,
                    "overlap": overlap,
                    "reeval_work": re_plan.values_processed,
                    "incremental_work": inc_plan.values_processed,
                    "reeval_plan_s": re_time,
                    "incremental_plan_s": inc_time,
                    "speedup": speedup,
                }
            )
    print_table(
        "INC: sliding COUNT-window aggregates, delta (Z-set) vs re-eval",
        ["agg window/slide", "overlap", "reeval work", "delta work",
         "reeval plan s", "delta plan s", "speedup"],
        table,
    )
    floor = min(
        row["speedup"] for row in series if row["overlap"] >= 100
    )
    record_bench_incremental(
        "INC_window",
        {
            "claim": "delta window is O(|delta|): >=5x over re-eval "
            "at overlap >=100:1",
            "tuples": N_TUPLES,
            "min_speedup_at_100x": floor,
            "series": series,
        },
    )
    # the acceptance floor: every >=100:1 geometry, both aggregates
    assert floor >= 5.0, f"speedup floor {floor:.2f} < 5x"
    benchmark(
        lambda: run_window(DeltaWindowAggregatePlan, 50_000, 500, "sum")
    )


def test_delta_join_holds_parity_with_symmetric_hash(benchmark):
    hash_time, hash_plan = run_join(SlidingWindowJoinPlan)
    delta_time, delta_plan = run_join(DeltaWindowJoinPlan)
    assert hash_plan.pairs_emitted == delta_plan.pairs_emitted
    ratio = delta_time / hash_time
    print_table(
        "INC: sliding equi-join, Z-set circuit vs symmetric hash",
        ["route", "pairs", "wall s", "ktuples/s"],
        [
            (
                "symmetric-hash",
                hash_plan.pairs_emitted,
                hash_time,
                2 * N_JOIN / hash_time / 1e3,
            ),
            (
                "zset-circuit",
                delta_plan.pairs_emitted,
                delta_time,
                2 * N_JOIN / delta_time / 1e3,
            ),
        ],
    )
    record_bench_incremental(
        "INC_join",
        {
            "claim": "Z-set join circuit holds parity with the "
            "symmetric-hash plan (identical pairs)",
            "tuples": 2 * N_JOIN,
            "pairs": int(delta_plan.pairs_emitted),
            "hash_s": hash_time,
            "circuit_s": delta_time,
            "circuit_over_hash": ratio,
        },
    )
    # parity contract: the circuit's retraction bookkeeping must not
    # cost more than ~3x the direct plan (generous: both are O(|delta|))
    assert ratio < 3.0, f"circuit {ratio:.2f}x slower than hash join"
    benchmark(lambda: run_join(DeltaWindowJoinPlan))
