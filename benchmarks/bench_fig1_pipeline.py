"""Experiment F1 — the Figure 1 pipeline (R -> B1 -> Q -> B2 -> E).

Paper claim (§2, §4): collecting tuples into baskets and evaluating
queries in bulk lets throughput grow with batch size; per-tuple scheduling
overhead dominates at batch=1 and amortizes away as batches grow.

Reported series: ingest batch size vs end-to-end throughput (tuples/s).
Shape to reproduce: monotone-ish growth, large (>5x) gap between batch=1
and batch=10k.
"""

from repro.adapters.generators import uniform_ints
from repro.bench import (
    build_figure1_pipeline,
    print_table,
    record_bench_fig1,
    record_result,
    run_stream_through,
)

N_TUPLES = 20_000
BATCH_SIZES = [1, 10, 100, 1_000, 10_000]


def sweep():
    rows = uniform_ints(N_TUPLES, 0, 1000, seed=42)
    points = []
    for batch in BATCH_SIZES:
        fixture = build_figure1_pipeline(low=100, high=200)
        m = run_stream_through(fixture, rows, batch)
        points.append((batch, m.throughput, m.wall_seconds,
                       int(m.extra["delivered"])))
    return points


def test_fig1_pipeline_throughput(benchmark):
    points = sweep()
    print_table(
        "F1: Figure-1 pipeline throughput vs ingest batch size",
        ["batch", "tuples/s", "seconds", "delivered"],
        points,
    )
    payload = {
        "claim": "throughput grows with batch size",
        "series": [
            {"batch": b, "throughput": t} for b, t, _, _ in points
        ],
    }
    record_result("F1", payload)
    # the CI artifact at the repo root carries the same headline series
    record_bench_fig1("F1", payload)
    by_batch = {b: t for b, t, _, _ in points}
    assert by_batch[10_000] > by_batch[1] * 5, (
        "batched basket processing must dwarf tuple-at-a-time scheduling"
    )

    rows = uniform_ints(N_TUPLES, 0, 1000, seed=42)
    benchmark(
        lambda: run_stream_through(
            build_figure1_pipeline(low=100, high=200), rows, 1_000
        )
    )
