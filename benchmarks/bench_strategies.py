"""Experiment S1 — separate vs shared baskets (paper §2.5).

Paper claim: "sharing baskets minimizes the overhead of replicating the
stream in the proper baskets" — the separate-baskets strategy pays one
copy of every tuple per query, so its cost grows with the number of
standing queries while shared baskets ingest each tuple once.

Reported table: #queries vs wall time and tuples *copied* for both
strategies.  Shape: separate's copy count = N*k and its runtime gap vs
shared grows with k.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.scheduler import Scheduler
from repro.core.strategies import (
    RangeQuery,
    build_separate_pipeline,
    build_shared_pipeline,
)
from repro.kernel.types import AtomType

N_TUPLES = 5_000
QUERY_COUNTS = [1, 2, 4, 8, 16, 32]
CHUNK = 500


def run_strategy(builder, n_queries: int):
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    queries = [
        RangeQuery(f"q{i}", "v", i * 10, i * 10 + 9)
        for i in range(n_queries)
    ]
    net = builder(stream, queries, clock)
    scheduler = Scheduler()
    for transition in net.all_transitions():
        scheduler.register(transition)
    rows = uniform_ints(N_TUPLES, 0, 1000, seed=5)
    started = time.perf_counter()
    for i in range(0, len(rows), CHUNK):
        stream.insert_rows(rows[i : i + CHUNK])
        scheduler.run_until_quiescent()
    elapsed = time.perf_counter() - started
    copied = sum(
        getattr(t, "tuples_copied", 0) for t in net.extra_transitions
    )
    return elapsed, copied, net


def test_separate_vs_shared_baskets(benchmark):
    # warm caches/allocator so the k=1 points are not skewed
    run_strategy(build_separate_pipeline, 1)
    run_strategy(build_shared_pipeline, 1)
    rows = []
    results = {}
    for k in QUERY_COUNTS:
        sep_time, sep_copied, _ = run_strategy(build_separate_pipeline, k)
        sh_time, sh_copied, _ = run_strategy(build_shared_pipeline, k)
        rows.append(
            (k, sep_time, sep_copied, sh_time, sh_copied,
             sep_time / sh_time)
        )
        results[k] = (sep_time, sh_time)
    print_table(
        "S1: separate vs shared baskets",
        ["queries", "separate s", "copies", "shared s", "copies",
         "sep/shared"],
        rows,
    )
    record_result(
        "S1",
        {
            "claim": "shared baskets avoid the per-query stream copy",
            "series": [
                {
                    "queries": k,
                    "separate_s": r[1],
                    "separate_copies": r[2],
                    "shared_s": r[3],
                }
                for k, r in zip(QUERY_COUNTS, rows)
            ],
        },
    )
    # the replication cost is structural: N*k copies vs none
    assert rows[-1][2] == N_TUPLES * QUERY_COUNTS[-1]
    assert rows[-1][4] == 0
    # and at high query counts the copies cost real time
    assert results[32][0] > results[32][1], (
        "separate baskets must be slower than shared at 32 queries"
    )

    benchmark(lambda: run_strategy(build_shared_pipeline, 8))
