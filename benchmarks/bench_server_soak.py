"""Experiment SRV — network front door soak: N clients × M queries.

The server's acceptance claim: under the lossless ``block`` policy, a
sustained many-client load runs with **zero dropped frames**, and the
insert→deliver latency tail stays bounded.  The bench boots one engine
with M continuous queries — one per input basket, because SQL factories
consume their inputs (§2.5: distinct queries over one basket *compete*
for tuples; fan-out to many clients happens at the emitter) — connects
N concurrent TCP clients that all subscribe to all M queries, and has
every client run a closed loop: insert a batch of rows tagged
``(client, batch)`` into each basket, then wait until its own rows come
back on every subscription.  Each ``(client, query, batch)`` round trip
is one latency sample, measured from just before the INSERT frame is
written to the moment the last row of the batch is decoded from the
subscription — the full wire → ingest queue → pump → basket → factory →
emitter → session queue → wire path.

Because every client receives *all* clients' rows on all M queries, the
delivered volume is N×M times the per-basket insert volume — the
fan-out soak the per-client output queues exist for.

Reported to ``BENCH_server.json`` (folded into docs/perf_trajectory.md):
``SRV_soak`` — clients, queries, duration, rows in/out, insert→deliver
p50/p95/p99 ms, dropped frames (must be 0 under block), throughput.

CLI::

    PYTHONPATH=src python benchmarks/bench_server_soak.py \\
        --clients 50 --queries 4 --seconds 60
"""

import argparse
import threading
import time

import numpy as np

from repro.bench import print_table, record_bench_server
from repro.core.engine import DataCell
from repro.kernel.types import AtomType
from repro.server.client import DataCellClient
from repro.server.session import ServerConfig

COLUMNS = [
    ("client", AtomType.INT),
    ("batch", AtomType.INT),
    ("v", AtomType.INT),
]


def client_loop(
    cid, host, port, queries, batch_rows, deadline, samples, errors
):
    """One closed-loop client; appends latency samples (seconds)."""
    try:
        with DataCellClient(
            host, port, client=f"soak-{cid}", timeout=30.0
        ) as db:
            for name, _ in queries:
                db.subscribe(query=name)
            batch = 0
            while time.monotonic() < deadline:
                t0 = time.perf_counter()
                for _, basket in queries:
                    db.insert(
                        basket,
                        COLUMNS,
                        [(cid, batch, i) for i in range(batch_rows)],
                    )
                waiting = {name: batch_rows for name, _ in queries}
                while waiting:
                    for name in list(waiting):
                        for row in db.poll(name, timeout=30.0):
                            if row[0] == cid and row[1] == batch:
                                waiting[name] -= 1
                        if waiting[name] <= 0:
                            samples.append(time.perf_counter() - t0)
                            del waiting[name]
                batch += 1
            for name, _ in queries:
                db.unsubscribe(name)
    except Exception as exc:  # noqa: BLE001 - soak verdict needs the cause
        errors.append(f"client {cid}: {type(exc).__name__}: {exc}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--clients", type=int, default=50)
    parser.add_argument("--queries", type=int, default=4)
    parser.add_argument("--seconds", type=float, default=60.0)
    parser.add_argument("--batch-rows", type=int, default=8)
    parser.add_argument(
        "--backpressure", default="block",
        help="queue policy under test (default block = lossless)",
    )
    args = parser.parse_args()

    cell = DataCell()
    queries = []  # (query name, basket name)
    for i in range(args.queries):
        basket = f"soak{i}"
        cell.execute(
            f"create basket {basket} (client int, batch int, v int)"
        )
        handle = cell.submit_continuous(
            "select s.client, s.batch, s.v from "
            f"[select * from {basket} where {basket}.v >= 0] as s",
            name=f"soak_q{i}",
        )
        queries.append((handle.name, basket))
    cell.start()
    server = cell.serve(
        config=ServerConfig(backpressure=args.backpressure)
    )
    host, port = server.address
    print(
        f"soaking {args.clients} clients x {args.queries} queries "
        f"for {args.seconds:.0f}s on {host}:{port} "
        f"(policy={args.backpressure})"
    )

    samples, errors = [], []
    deadline = time.monotonic() + args.seconds
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=client_loop,
            args=(cid, host, port, queries, args.batch_rows,
                  deadline, samples, errors),
            name=f"soak-client-{cid}",
        )
        for cid in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started

    stats = server.stats()
    dropped = stats["dropped_frames"] + sum(
        s.get("dropped_frames", 0) for s in stats["sessions"].values()
    )
    rows_in = stats["ingest"]["applied_rows"]
    lat = np.asarray(sorted(samples), dtype=np.float64) * 1000.0
    p50, p95, p99 = (
        (float(np.percentile(lat, q)) for q in (50, 95, 99))
        if len(lat)
        else (0.0, 0.0, 0.0)
    )
    cell.stop()

    for message in errors:
        print(f"CLIENT ERROR: {message}")
    verdict = "PASS" if not errors and (
        args.backpressure != "block" or dropped == 0
    ) else "FAIL"
    print_table(
        f"Server soak ({verdict})",
        ["clients", "queries", "secs", "rows_in", "round_trips",
         "p50_ms", "p95_ms", "p99_ms", "dropped"],
        [[args.clients, args.queries, round(elapsed, 1), rows_in,
          len(samples), round(p50, 2), round(p95, 2), round(p99, 2),
          dropped]],
    )
    record_bench_server(
        "SRV_soak",
        {
            "claim": (
                "N clients x M queries soak: zero dropped frames under "
                "the block policy, bounded insert->deliver tail"
            ),
            "clients": args.clients,
            "queries": args.queries,
            "seconds": round(elapsed, 2),
            "batch_rows": args.batch_rows,
            "backpressure": args.backpressure,
            "rows_ingested": int(rows_in),
            "round_trips": len(samples),
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
            "p99_ms": round(p99, 3),
            "dropped_frames": int(dropped),
            "rows_per_second": (
                round(rows_in / elapsed, 1) if elapsed else 0.0
            ),
            "errors": errors,
        },
    )
    if verdict == "FAIL":
        raise SystemExit(1)


if __name__ == "__main__":
    main()
