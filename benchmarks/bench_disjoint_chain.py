"""Experiment S2 — disjoint-range chaining (paper §2.5, third strategy).

Paper claim: when queries want disjoint ranges of one attribute, letting
q1 remove its qualifying tuples before q2 reads means "q2 has to process
less tuples by avoiding seeing tuples that are already known not to
qualify".

Reported table: per-position-in-chain tuples scanned, chained vs shared,
across selectivities.  Shape: under chaining, scan counts shrink along the
chain by exactly the tuples consumed upstream; under sharing every query
scans the full stream.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.basket import Basket
from repro.core.clock import LogicalClock
from repro.core.scheduler import Scheduler
from repro.core.strategies import (
    RangeQuery,
    build_chained_pipeline,
    build_shared_pipeline,
)
from repro.kernel.types import AtomType

N_TUPLES = 10_000
N_QUERIES = 5
CHUNK = 1_000


def run(builder, selectivity_per_query: float):
    """Each of the 5 queries matches `selectivity_per_query` of [0,1000)."""
    clock = LogicalClock()
    stream = Basket("s", [("v", AtomType.INT)], clock)
    width = int(1000 * selectivity_per_query)
    queries = [
        RangeQuery(f"q{i}", "v", i * 200, i * 200 + width - 1)
        for i in range(N_QUERIES)
    ]
    net = builder(stream, queries, clock)
    scheduler = Scheduler()
    for transition in net.all_transitions():
        scheduler.register(transition)
    rows = uniform_ints(N_TUPLES, 0, 999, seed=9)
    started = time.perf_counter()
    for i in range(0, len(rows), CHUNK):
        stream.insert_rows(rows[i : i + CHUNK])
        scheduler.run_until_quiescent()
    elapsed = time.perf_counter() - started
    scans = [f.plan.tuples_scanned for f in net.factories]
    return elapsed, scans, net


def test_disjoint_chaining_reduces_scans(benchmark):
    table = []
    recorded = []
    for selectivity in (0.05, 0.10, 0.20):
        chain_time, chain_scans, _ = run(build_chained_pipeline, selectivity)
        shared_time, shared_scans, _ = run(build_shared_pipeline, selectivity)
        table.append(
            (
                f"{selectivity:.0%}",
                " ".join(str(s) for s in chain_scans),
                " ".join(str(s) for s in shared_scans),
                chain_time,
                shared_time,
            )
        )
        recorded.append(
            {
                "selectivity": selectivity,
                "chained_scans": chain_scans,
                "shared_scans": shared_scans,
                "chained_s": chain_time,
                "shared_s": shared_time,
            }
        )
        # chained: monotonically decreasing scan counts along the chain
        assert all(
            a >= b for a, b in zip(chain_scans, chain_scans[1:])
        )
        assert chain_scans[-1] < chain_scans[0]
        # shared: everyone scans everything
        assert all(s == N_TUPLES for s in shared_scans)
    print_table(
        "S2: tuples scanned per chain position (5 disjoint queries)",
        ["selectivity/query", "chained scans q1..q5", "shared scans",
         "chained s", "shared s"],
        table,
    )
    record_result(
        "S2",
        {
            "claim": "chaining lets later queries process fewer tuples",
            "series": recorded,
        },
    )

    benchmark(lambda: run(build_chained_pipeline, 0.10))
