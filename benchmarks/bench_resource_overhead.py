"""Experiment RES — cost of per-query resource accounting.

Claim to pin: attributing CPU (thread-time at firing/plan/opcode
boundaries), memory (``nbytes()`` rollups) and queue-wait to every
continuous query costs at most 5% of Figure-1-style throughput.  The
accounting layer samples clocks at batch boundaries and folds numpy
reductions over already-materialised arrays, so the per-tuple cost
should vanish at realistic batch sizes — this bench is the gate.

Method: the same selection pipeline is driven twice through a DataCell
with a live metrics registry — once with accounting enabled (the
default whenever metrics are on) and once with ``resources=False``.
Min-of-N wall times over interleaved repeats make the comparison robust
to CI noise; the overhead percentage is recorded into the repo-root
``BENCH_fig1.json`` artifact next to the F1 series.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_bench_fig1
from repro.core.engine import DataCell
from repro.obs.metrics import MetricsRegistry

N_TUPLES = 200_000
BATCH = 1_000
REPEATS = 5
MAX_OVERHEAD_PCT = 5.0


def _run_once(accounted: bool) -> float:
    """One full pipeline run; returns wall seconds for the hot loop."""
    cell = DataCell(
        metrics=MetricsRegistry(),
        resources=accounted,
    )
    cell.execute("create basket readings (v int)")
    query = cell.submit_continuous(
        "select r.v from [select * from readings "
        "where readings.v > 100 and readings.v < 200] as r"
    )
    rows = uniform_ints(N_TUPLES, 0, 1000, seed=7)
    started = time.perf_counter()
    for i in range(0, N_TUPLES, BATCH):
        cell.insert("readings", rows[i:i + BATCH])
        cell.run_until_quiescent()
    elapsed = time.perf_counter() - started
    assert query.results_delivered > 0
    if accounted:
        # the accounting actually ran: CPU attributed, rows counted
        account = cell.resources.account(query.name)
        assert account is not None and account.cpu_seconds > 0
        assert account.rows_in == N_TUPLES
    return elapsed


def test_resource_accounting_overhead_under_five_percent():
    # warm both variants (allocator warmup, import side effects), then
    # interleave the timed repeats so drifting machine load hits both
    # variants equally instead of whichever ran last
    _run_once(False)
    _run_once(True)
    dark_times, accounted_times = [], []
    for _ in range(REPEATS):
        dark_times.append(_run_once(False))
        accounted_times.append(_run_once(True))
    dark = min(dark_times)
    accounted = min(accounted_times)
    overhead_pct = (accounted - dark) / dark * 100.0
    throughput_dark = N_TUPLES / dark
    throughput_accounted = N_TUPLES / accounted
    print_table(
        "RES: per-query resource accounting overhead",
        ["variant", "seconds", "tuples/s"],
        [
            ("resources=False", dark, throughput_dark),
            ("accounting on", accounted, throughput_accounted),
        ],
    )
    record_bench_fig1(
        "RES_overhead",
        {
            "claim": "per-query resource accounting costs <= 5% throughput",
            "overhead_pct": overhead_pct,
            "throughput_dark": throughput_dark,
            "throughput_accounted": throughput_accounted,
            "repeats": REPEATS,
            "tuples": N_TUPLES,
        },
    )
    assert overhead_pct <= MAX_OVERHEAD_PCT, (
        f"resource accounting overhead {overhead_pct:.2f}% exceeds the "
        f"{MAX_OVERHEAD_PCT}% budget"
    )
