"""Experiment PW — predicate windows via basket expressions (§2.6).

Paper claim: basket expressions "allow for more flexible/expressive
queries by selectively picking the tuples to process from a basket"; q2's
predicate window filters the stream *before* the continuous query
considers it, consuming only the referenced tuples.

We run the paper's q1 and q2 verbatim through the SQL path and sweep the
predicate-window selectivity.  Reported: tuples consumed vs retained, and
throughput.  Shape: q1 always consumes everything; q2 consumes exactly the
window's share and leaves the rest buffered, at (near-)constant cost.
"""

import time

from repro.adapters.generators import uniform_ints
from repro.bench import print_table, record_result
from repro.core.clock import LogicalClock
from repro.core.engine import DataCell

N_TUPLES = 20_000
CHUNK = 1_000
SELECTIVITIES = [0.1, 0.5, 0.9]


def run_q2(selectivity: float):
    cell = DataCell(clock=LogicalClock())
    cell.execute("create basket R (a int, b int)")
    cutoff = int(1000 * selectivity)
    query = cell.submit_continuous(
        f"select * from [select * from R where R.b < {cutoff}] as S "
        "where S.a > 10"
    )
    rows = [
        (a, b)
        for (a,), (b,) in zip(
            uniform_ints(N_TUPLES, 0, 1000, seed=31),
            uniform_ints(N_TUPLES, 0, 999, seed=32),
        )
    ]
    basket = cell.basket("R")
    started = time.perf_counter()
    for i in range(0, N_TUPLES, CHUNK):
        cell.insert("R", rows[i : i + CHUNK])
        cell.run_until_quiescent()
    elapsed = time.perf_counter() - started
    consumed = basket.total_out
    retained = basket.count
    delivered = len(query.fetch())
    return elapsed, consumed, retained, delivered


def run_q1():
    cell = DataCell(clock=LogicalClock())
    cell.execute("create basket R (a int, b int)")
    query = cell.submit_continuous(
        "select * from [select * from R] as S where S.a > 10"
    )
    rows = [
        (a, b)
        for (a,), (b,) in zip(
            uniform_ints(N_TUPLES, 0, 1000, seed=31),
            uniform_ints(N_TUPLES, 0, 999, seed=32),
        )
    ]
    started = time.perf_counter()
    for i in range(0, N_TUPLES, CHUNK):
        cell.insert("R", rows[i : i + CHUNK])
        cell.run_until_quiescent()
    elapsed = time.perf_counter() - started
    basket = cell.basket("R")
    return elapsed, basket.total_out, basket.count, len(query.fetch())


def test_predicate_windows(benchmark):
    table = []
    series = []
    q1_time, q1_consumed, q1_left, q1_delivered = run_q1()
    table.append(
        ("q1 (no window)", q1_consumed, q1_left,
         q1_delivered, N_TUPLES / q1_time)
    )
    assert q1_consumed == N_TUPLES and q1_left == 0, (
        "q1 consumes every tuple it references — all of them"
    )
    for selectivity in SELECTIVITIES:
        elapsed, consumed, retained, delivered = run_q2(selectivity)
        table.append(
            (f"q2 sel={selectivity:.0%}", consumed, retained, delivered,
             N_TUPLES / elapsed)
        )
        series.append(
            {
                "selectivity": selectivity,
                "consumed": consumed,
                "retained": retained,
                "delivered": delivered,
                "throughput": N_TUPLES / elapsed,
            }
        )
        assert consumed + retained == N_TUPLES
        # consumed share tracks the predicate-window selectivity (±5%)
        assert abs(consumed / N_TUPLES - selectivity) < 0.05
    print_table(
        "PW: paper q1/q2 — consumption follows the predicate window",
        ["query", "consumed", "retained in basket", "delivered",
         "tuples/s"],
        table,
    )
    record_result(
        "PW",
        {
            "claim": "basket expressions consume exactly the referenced tuples",
            "q1": {"consumed": q1_consumed, "delivered": q1_delivered},
            "series": series,
        },
    )

    benchmark(lambda: run_q2(0.5))
